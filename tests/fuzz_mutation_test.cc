// Deterministic mutation fuzzing for the two external input surfaces:
// the wire parser (DecodeFrame/DecodePayload/DecodeHeader) and the
// NDJSON trace reader (ReadTrace). Inputs start from valid encodings,
// then get byte flips, splices, and truncations from a fixed-seed
// common/rng.h generator, so every run covers the same corpus and a
// failure reproduces by seed. The assertion is crash-freedom (and a few
// cheap sanity bounds) under whatever sanitizer the build enables —
// tools/ci.sh runs this binary under ASan+UBSan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/qlog.h"
#include "obs/trace_reader.h"
#include "quic/wire.h"

namespace mpq::quic {
namespace {

// Mirror of the generator in wire_property_test.cc: a diverse valid
// frame to seed mutations from. Kept local so the two tests stay
// independently hackable.
Frame RandomFrame(Rng& rng) {
  switch (rng.NextBounded(10)) {
    case 0: {
      StreamFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(
          rng.NextBounded(1000) + 1)};
      f.offset = ByteCount{rng.NextBounded(1ULL << 40)};
      f.fin = rng.NextBool(0.2);
      f.data.resize(rng.NextBounded(600));
      for (auto& b : f.data) b = static_cast<std::uint8_t>(rng.NextU64());
      return f;
    }
    case 1: {
      AckFrame f;
      f.path_id = PathId{static_cast<std::uint8_t>(rng.NextBounded(8))};
      f.ack_delay = static_cast<Duration>(rng.NextBounded(1 << 20));
      PacketNumber cursor{rng.NextBounded(1ULL << 30) + 3000};
      const std::size_t count = rng.NextBounded(32) + 1;
      for (std::size_t i = 0; i < count && cursor > 8; ++i) {
        const PacketNumber largest = cursor;
        const PacketNumber smallest =
            largest -
            rng.NextBounded(std::min<std::uint64_t>(largest.value(), 5));
        f.ranges.push_back({smallest, largest});
        if (smallest < rng.NextBounded(6) + 2) break;
        cursor = smallest - (rng.NextBounded(4) + 2);
      }
      return f;
    }
    case 2: {
      WindowUpdateFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(rng.NextBounded(100))};
      f.max_data = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    case 3:
      return PingFrame{};
    case 4: {
      PathsFrame f;
      const std::size_t count = rng.NextBounded(6);
      for (std::size_t i = 0; i < count; ++i) {
        f.paths.push_back({PathId{static_cast<std::uint8_t>(i)},
                           rng.NextBool(0.3) ? PathStatus::kPotentiallyFailed
                                             : PathStatus::kActive,
                           static_cast<Duration>(rng.NextBounded(1 << 22))});
      }
      return f;
    }
    case 5: {
      AddAddressFrame f;
      const std::size_t count = rng.NextBounded(4) + 1;
      for (std::size_t i = 0; i < count; ++i) {
        f.addresses.push_back(
            {static_cast<std::uint16_t>(rng.NextBounded(100)),
             static_cast<std::uint16_t>(rng.NextBounded(4))});
      }
      return f;
    }
    case 6: {
      RemoveAddressFrame f;
      f.addresses.push_back({static_cast<std::uint16_t>(rng.NextBounded(100)),
                             static_cast<std::uint16_t>(rng.NextBounded(4))});
      return f;
    }
    case 7: {
      RstStreamFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(
          rng.NextBounded(1000) + 1)};
      f.error_code = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
      f.final_offset = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    case 8: {
      ConnectionCloseFrame f;
      f.error_code = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
      f.reason.resize(rng.NextBounded(40));
      for (auto& c : f.reason) c = static_cast<char>(rng.NextBounded(256));
      return f;
    }
    default: {
      BlockedFrame f;
      f.stream_id = StreamId{static_cast<std::uint32_t>(rng.NextBounded(100))};
      return f;
    }
  }
}

/// Apply `count` random single-byte edits (flip, overwrite, or splice of
/// a short random run) in place.
void MutateBytes(Rng& rng, std::vector<std::uint8_t>& bytes,
                 std::size_t count) {
  if (bytes.empty()) return;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pos = rng.NextBounded(bytes.size());
    switch (rng.NextBounded(3)) {
      case 0:  // flip one bit
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.NextBounded(8));
        break;
      case 1:  // overwrite with a fresh byte
        bytes[pos] = static_cast<std::uint8_t>(rng.NextU64());
        break;
      default: {  // splice a short random run
        const std::size_t run =
            std::min<std::size_t>(rng.NextBounded(8) + 1, bytes.size() - pos);
        for (std::size_t j = 0; j < run; ++j) {
          bytes[pos + j] = static_cast<std::uint8_t>(rng.NextU64());
        }
        break;
      }
    }
  }
}

/// Decoding must never crash, and on success the decoded frame must
/// re-encode (i.e. be internally consistent enough to serialize).
void DecodeMustNotCrash(std::span<const std::uint8_t> bytes) {
  BufReader reader(bytes);
  Frame frame;
  if (DecodeFrame(reader, frame)) {
    BufWriter reencoded;
    EncodeFrame(frame, reencoded);
    ASSERT_EQ(reencoded.size(), FrameWireSize(frame));
  }
  std::vector<Frame> frames;
  if (DecodePayload(bytes, frames)) {
    for (const Frame& f : frames) {
      BufWriter reencoded;
      EncodeFrame(f, reencoded);
      ASSERT_EQ(reencoded.size(), FrameWireSize(f));
    }
  }
}

TEST(FuzzMutation, MutatedFramesNeverCrashDecoder) {
  Rng rng(0xF0552001);
  for (int iter = 0; iter < 4000; ++iter) {
    BufWriter writer;
    const std::size_t count = rng.NextBounded(4) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      EncodeFrame(RandomFrame(rng), writer);
    }
    std::vector<std::uint8_t> bytes(writer.data());
    MutateBytes(rng, bytes, rng.NextBounded(8) + 1);
    DecodeMustNotCrash(bytes);
  }
}

TEST(FuzzMutation, EveryTruncationPrefixIsHandled) {
  Rng rng(0xF0552002);
  for (int iter = 0; iter < 200; ++iter) {
    BufWriter writer;
    EncodeFrame(RandomFrame(rng), writer);
    const std::vector<std::uint8_t>& bytes = writer.data();
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      DecodeMustNotCrash(std::span<const std::uint8_t>(bytes.data(), len));
    }
  }
}

TEST(FuzzMutation, PureNoiseNeverCrashesDecoder) {
  Rng rng(0xF0552003);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.NextBounded(300));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextU64());
    DecodeMustNotCrash(bytes);
  }
}

TEST(FuzzMutation, MutatedHeadersNeverCrashDecoder) {
  Rng rng(0xF0552004);
  for (int iter = 0; iter < 4000; ++iter) {
    PacketHeader header;
    header.cid = rng.NextU64();
    header.multipath = rng.NextBool(0.5);
    header.path_id = PathId{static_cast<std::uint8_t>(rng.NextBounded(8))};
    const PacketNumber largest_acked{rng.NextBounded(1ULL << 34)};
    header.packet_number = largest_acked + 1 + rng.NextBounded(1 << 12);
    header.handshake = rng.NextBool(0.1);
    BufWriter writer;
    EncodeHeader(header, largest_acked, writer);
    std::vector<std::uint8_t> bytes(writer.data());
    MutateBytes(rng, bytes, rng.NextBounded(4) + 1);
    const std::size_t len = rng.NextBool(0.3)
                                ? rng.NextBounded(bytes.size() + 1)
                                : bytes.size();
    BufReader reader(std::span<const std::uint8_t>(bytes.data(), len));
    ParsedHeader parsed;
    if (DecodeHeader(reader, parsed)) {
      // Whatever decoded must at least be self-consistent.
      ASSERT_GE(parsed.header_size, parsed.pn_length);
      ASSERT_LE(parsed.header_size, len);
      (void)DecodePacketNumber(largest_acked, parsed.header.packet_number,
                               parsed.pn_length);
    }
  }
}

}  // namespace
}  // namespace mpq::quic

namespace mpq::obs {
namespace {

/// Produce a realistic trace through the actual writer.
std::string MakeTrace(Rng& rng) {
  std::stringstream stream;
  {
    QlogTracer tracer(stream, "fuzz");
    TimePoint now = 0;
    const int events = static_cast<int>(rng.NextBounded(40)) + 5;
    for (int i = 0; i < events; ++i) {
      now += static_cast<TimePoint>(rng.NextBounded(5000));
      const PathId path{static_cast<std::uint8_t>(rng.NextBounded(4))};
      switch (rng.NextBounded(4)) {
        case 0:
          tracer.OnPacketSent(now, path, PacketNumber{rng.NextBounded(1000)},
                              ByteCount{rng.NextBounded(1350)}, true);
          break;
        case 1:
          tracer.OnPacketLost(now, path, PacketNumber{rng.NextBounded(1000)});
          break;
        case 2:
          tracer.OnSchedulerDecision(now, path, "lowest-rtt",
                                     rng.NextBounded(100));
          break;
        default:
          tracer.OnPathSample(now, path, ByteCount{rng.NextBounded(1 << 20)},
                              ByteCount{rng.NextBounded(1 << 20)},
                              static_cast<Duration>(rng.NextBounded(1 << 20)));
          break;
      }
    }
  }
  return stream.str();
}

TEST(FuzzMutation, MutatedTracesNeverCrashReader) {
  Rng rng(0xF0552005);
  for (int iter = 0; iter < 1500; ++iter) {
    std::string text = MakeTrace(rng);
    // Byte-level corruption of the NDJSON text itself.
    const std::size_t edits = rng.NextBounded(12) + 1;
    for (std::size_t i = 0; i < edits; ++i) {
      if (text.empty()) break;
      const std::size_t pos = rng.NextBounded(text.size());
      if (rng.NextBool(0.5)) {
        text[pos] = static_cast<char>(rng.NextBounded(256));
      } else {
        text[pos] ^= static_cast<char>(1 << rng.NextBounded(8));
      }
    }
    // Sometimes cut the tail off mid-line (crashed-writer shape).
    if (rng.NextBool(0.4)) {
      text.resize(rng.NextBounded(text.size() + 1));
    }
    std::istringstream in(text);
    const TraceSummary summary = ReadTrace(in);
    // A corrupted trace may lose events but can never invent time
    // running backwards in the summary bounds.
    if (summary.events > 0) {
      EXPECT_LE(summary.first_time, summary.last_time);
    }
  }
}

TEST(FuzzMutation, TruncatedTracesCountTailAsMalformed) {
  Rng rng(0xF0552006);
  for (int iter = 0; iter < 300; ++iter) {
    const std::string text = MakeTrace(rng);
    // Cut inside the final line: strict NDJSON must flag the tail.
    const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
    const std::size_t cut =
        last_nl + 2 + rng.NextBounded(text.size() - last_nl - 2);
    std::istringstream in(text.substr(0, cut));
    const TraceSummary summary = ReadTrace(in);
    EXPECT_GE(summary.malformed, 1u) << "iter " << iter;
  }
}

}  // namespace
}  // namespace mpq::obs
