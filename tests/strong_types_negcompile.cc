// Negative-compilation proof for the strong protocol types
// (common/strong.h): each NEG_CASE_* block below is a cross-kind mix
// that MUST fail to compile. CMake registers one ctest per case that
// runs the compiler in -fsyntax-only mode with the case's macro defined
// and expects failure (WILL_FAIL); compiled with no macro, this file is
// the positive control and must build and run clean.
//
// See docs/STATIC_ANALYSIS.md for the full list of what the wrappers
// allow and forbid.
#include "common/types.h"

using namespace mpq;

int main() {
  PathId path{1};
  PacketNumber pn{2};
  StreamId stream{3};
  ByteCount bytes{4};

#if defined(NEG_CASE_ASSIGN_RAW)
  // Raw integers never assign into a strong type without a visible wrap.
  pn = 7;
#elif defined(NEG_CASE_CROSS_INIT)
  // One kind never initializes another.
  ByteCount wrong = pn;
  (void)wrong;
#elif defined(NEG_CASE_CROSS_ARITH)
  // Arithmetic across kinds is meaningless (a packet number plus a byte
  // count is neither).
  (void)(pn + bytes);
#elif defined(NEG_CASE_CROSS_COMPARE)
  // Comparing a path id against a stream id is always a bug.
  (void)(path == stream);
#elif defined(NEG_CASE_IMPLICIT_NARROW)
  // Escaping to a raw integer requires .value() (or an explicit cast);
  // it never happens implicitly.
  std::uint64_t raw = bytes;
  (void)raw;
#elif defined(NEG_CASE_CROSS_ASSIGN)
  // Assignment across kinds is as forbidden as initialization.
  bytes = ByteCount{1};
  pn = PacketNumber{bytes.value()};  // fine: explicit, visible
  path = stream;                     // not fine
#endif

  // Positive control: the intended idioms all work.
  pn = PacketNumber{7};
  bytes += ByteCount{100};
  bytes = bytes + 10;
  const std::uint64_t escaped = bytes.value();
  const bool later = pn > PacketNumber{1};
  (void)path;
  (void)stream;
  return escaped != 0 && later ? 0 : 1;
}
