// Unit tests for the common toolkit: codecs, RNG determinism, statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/buf.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace mpq {
namespace {

TEST(BufWriter, FixedWidthIntegersAreBigEndian) {
  BufWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0102030405060708ULL);
  const std::vector<std::uint8_t> expected = {
      0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF,
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(w.data(), expected);
}

TEST(BufWriter, BulkWritesMatchByteWiseEncoding) {
  // The multi-byte writers take a single resize + memcpy; the result must
  // be byte-identical to writing the same big-endian bytes one at a time.
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }

  BufWriter bulk;
  bulk.WriteU16(0x1234);
  bulk.WriteU32(0xDEADBEEF);
  bulk.WriteU64(0x0102030405060708ULL);
  bulk.WriteBytes(payload);
  bulk.WriteBytes(payload.data(), 10);
  bulk.WriteBytes(std::span<const std::uint8_t>{});  // no-op
  bulk.WriteZeroes(5);

  BufWriter ref;
  for (std::uint8_t b : {0x12, 0x34}) ref.WriteU8(b);
  for (std::uint8_t b : {0xDE, 0xAD, 0xBE, 0xEF}) ref.WriteU8(b);
  for (int i = 1; i <= 8; ++i) ref.WriteU8(static_cast<std::uint8_t>(i));
  for (std::uint8_t b : payload) ref.WriteU8(b);
  for (std::size_t i = 0; i < 10; ++i) ref.WriteU8(payload[i]);
  for (int i = 0; i < 5; ++i) ref.WriteU8(0);

  EXPECT_EQ(bulk.data(), ref.data());
}

TEST(BufWriter, ClearKeepsAllocationAndMutableSpanAliases) {
  // The packet-assembly scratch path: Clear() reuses the buffer, and
  // mutable_span() writes through to the stored bytes (in-place AEAD).
  BufWriter w;
  w.WriteU32(0xAABBCCDD);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.WriteU8(7);
  w.WriteZeroes(3);
  const std::span<std::uint8_t> view = w.mutable_span();
  ASSERT_EQ(view.size(), 4u);
  view[3] = 0x55;
  const std::vector<std::uint8_t> expected = {7, 0, 0, 0x55};
  EXPECT_EQ(w.data(), expected);
}

TEST(BufReader, RoundTripsFixedWidthIntegers) {
  BufWriter w;
  w.WriteU8(7);
  w.WriteU16(1025);
  w.WriteU32(70000);
  w.WriteU64(1ULL << 60);
  BufReader r(w.span());
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  ASSERT_TRUE(r.ReadU8(a));
  ASSERT_TRUE(r.ReadU16(b));
  ASSERT_TRUE(r.ReadU32(c));
  ASSERT_TRUE(r.ReadU64(d));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 1025);
  EXPECT_EQ(c, 70000u);
  EXPECT_EQ(d, 1ULL << 60);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufReader, UnderrunFailsWithoutAdvancing) {
  BufWriter w;
  w.WriteU16(99);
  BufReader r(w.span());
  std::uint32_t v = 0;
  EXPECT_FALSE(r.ReadU32(v));
  EXPECT_EQ(r.remaining(), 2u);  // cursor untouched
  std::uint16_t ok = 0;
  EXPECT_TRUE(r.ReadU16(ok));
  EXPECT_EQ(ok, 99);
}

TEST(Varint, KnownEncodingBoundaries) {
  struct Case {
    std::uint64_t value;
    std::size_t size;
  };
  const Case cases[] = {{0, 1},        {63, 1},          {64, 2},
                        {16383, 2},    {16384, 4},       {(1ULL << 30) - 1, 4},
                        {1ULL << 30, 8}, {kVarintMax, 8}};
  for (const auto& c : cases) {
    EXPECT_EQ(VarintSize(c.value), c.size) << c.value;
    BufWriter w;
    ASSERT_TRUE(w.WriteVarint(c.value));
    EXPECT_EQ(w.size(), c.size);
    BufReader r(w.span());
    std::uint64_t decoded = 0;
    ASSERT_TRUE(r.ReadVarint(decoded));
    EXPECT_EQ(decoded, c.value);
  }
}

TEST(Varint, RejectsOversizedValue) {
  BufWriter w;
  EXPECT_FALSE(w.WriteVarint(kVarintMax + 1));
  EXPECT_TRUE(w.empty());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity) {
  BufWriter w;
  ASSERT_TRUE(w.WriteVarint(GetParam()));
  BufReader r(w.span());
  std::uint64_t decoded = 0;
  ASSERT_TRUE(r.ReadVarint(decoded));
  EXPECT_EQ(decoded, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Sweep, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 63ULL, 64ULL,
                                           100ULL, 16383ULL, 16384ULL,
                                           1000000ULL, (1ULL << 30) - 1,
                                           1ULL << 30, 1ULL << 40,
                                           (1ULL << 62) - 1));

TEST(Varint, FuzzRoundTripAgainstRng) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.NextU64() & kVarintMax;
    BufWriter w;
    ASSERT_TRUE(w.WriteVarint(v));
    BufReader r(w.span());
    std::uint64_t decoded = 0;
    ASSERT_TRUE(r.ReadVarint(decoded));
    ASSERT_EQ(decoded, v);
  }
}

TEST(Hex, FormatsBytes) {
  const std::uint8_t bytes[] = {0x00, 0xFF, 0x1A};
  EXPECT_EQ(ToHex({bytes, 3}), "00ff1a");
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, BoundedIsUniformish) {
  Rng rng(13);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 100) << "bucket " << b;
  }
}

TEST(Rng, ForkIsIndependentOfParentUsage) {
  Rng parent(42);
  Rng child = parent.Fork();
  const std::uint64_t child_first = child.NextU64();
  // The child stream must not replay the parent's.
  Rng parent2(42);
  EXPECT_NE(child_first, parent2.NextU64());
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  const auto cdf = EmpiricalCdf({5, 3, 1, 4, 2});
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_probability,
              cdf[i - 1].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

TEST(Stats, FractionAbove) {
  EXPECT_DOUBLE_EQ(FractionAbove({0.5, 1.5, 2.0, 1.0}, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 1.0), 0.0);
}

TEST(Stats, SummaryFiveNumbers) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
}

TEST(Types, DurationConversions) {
  EXPECT_EQ(SecondsToDuration(1.5), 1'500'000);
  EXPECT_EQ(MillisToDuration(2.5), 2500);
  EXPECT_DOUBLE_EQ(DurationToSeconds(250000), 0.25);
}

}  // namespace
}  // namespace mpq
