// Tests for the WSP experimental design and the Table-1 scenario
// generator: determinism, space-filling properties, range mapping, and
// class parameterisation.
#include <gtest/gtest.h>

#include <cmath>

#include "expdesign/scenarios.h"
#include "expdesign/wsp.h"

namespace mpq::expdesign {
namespace {

TEST(Wsp, SelectRespectsMinimumDistance) {
  std::vector<Point> candidates = {
      {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9}, {0.1, 0.1}, {0.5, 0.9}};
  const auto selected = WspSelect(candidates, 0.1);
  // The two nearly-identical points must not both be selected.
  int close_pair = 0;
  for (std::size_t i : selected) {
    if (i == 0 || i == 1) ++close_pair;
  }
  EXPECT_EQ(close_pair, 1);
}

TEST(Wsp, ZeroDistanceSelectsEverything) {
  std::vector<Point> candidates = {{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}};
  EXPECT_EQ(WspSelect(candidates, 0.0).size(), 3u);
}

TEST(Wsp, HugeDistanceSelectsOne) {
  std::vector<Point> candidates = {{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}};
  EXPECT_EQ(WspSelect(candidates, 10.0).size(), 1u);
}

TEST(Wsp, DesignHasExactCountAndIsDeterministic) {
  const auto a = WspDesign(4, 100, 42);
  const auto b = WspDesign(4, 100, 42);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  const auto c = WspDesign(4, 100, 43);
  EXPECT_NE(a, c);
}

TEST(Wsp, DesignCoordinatesInUnitCube) {
  const auto design = WspDesign(6, 253, 7);
  for (const Point& p : design) {
    ASSERT_EQ(p.size(), 6u);
    for (double x : p) {
      ASSERT_GE(x, 0.0);
      ASSERT_LT(x, 1.0);
    }
  }
}

TEST(Wsp, SpaceFillingBeatsRandomSubset) {
  // The WSP design's minimum pairwise distance must comfortably exceed
  // that of a plain random sample of the same size (the whole point of
  // the algorithm).
  const auto design = WspDesign(4, 64, 11);
  Rng rng(11);
  std::vector<Point> random(64, Point(4));
  for (auto& p : random) {
    for (auto& x : p) x = rng.NextDouble();
  }
  EXPECT_GT(MinPairwiseDistance(design),
            2.0 * MinPairwiseDistance(random));
}

TEST(Wsp, InvalidArgumentsThrow) {
  EXPECT_THROW(WspDesign(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(WspDesign(3, 0, 1), std::invalid_argument);
}

TEST(Scenarios, RangesMatchTable1) {
  const FactorRanges low = RangesFor(ScenarioClass::kLowBdpNoLoss);
  EXPECT_DOUBLE_EQ(low.capacity_min_mbps, 0.1);
  EXPECT_DOUBLE_EQ(low.capacity_max_mbps, 100.0);
  EXPECT_EQ(low.rtt_max, 50 * kMillisecond);
  EXPECT_EQ(low.queue_max, 100 * kMillisecond);
  EXPECT_FALSE(low.lossy);

  const FactorRanges high = RangesFor(ScenarioClass::kHighBdpLosses);
  EXPECT_EQ(high.rtt_max, 400 * kMillisecond);
  EXPECT_EQ(high.queue_max, 2000 * kMillisecond);
  EXPECT_TRUE(high.lossy);
  EXPECT_DOUBLE_EQ(high.loss_max, 0.025);
}

class ScenarioClassSweep : public ::testing::TestWithParam<ScenarioClass> {};

TEST_P(ScenarioClassSweep, GeneratedScenariosWithinRanges) {
  const FactorRanges ranges = RangesFor(GetParam());
  const auto scenarios = GenerateScenarios(GetParam(), 100, 5);
  ASSERT_EQ(scenarios.size(), 100u);
  for (const auto& scenario : scenarios) {
    for (const auto& path : scenario.paths) {
      EXPECT_GE(path.capacity_mbps, ranges.capacity_min_mbps);
      EXPECT_LE(path.capacity_mbps, ranges.capacity_max_mbps);
      EXPECT_GE(path.rtt, ranges.rtt_min);
      EXPECT_LE(path.rtt, ranges.rtt_max);
      EXPECT_GE(path.max_queue_delay, ranges.queue_min);
      EXPECT_LE(path.max_queue_delay, ranges.queue_max);
      if (ranges.lossy) {
        EXPECT_LE(path.random_loss_rate, ranges.loss_max);
      } else {
        EXPECT_DOUBLE_EQ(path.random_loss_rate, 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ScenarioClassSweep,
                         ::testing::Values(ScenarioClass::kLowBdpNoLoss,
                                           ScenarioClass::kLowBdpLosses,
                                           ScenarioClass::kHighBdpNoLoss,
                                           ScenarioClass::kHighBdpLosses));

TEST(Scenarios, CapacityIsLogDistributed) {
  // Log-uniform sampling: roughly a third of capacities in each decade.
  const auto scenarios =
      GenerateScenarios(ScenarioClass::kLowBdpNoLoss, 253, 5);
  int below_1 = 0, below_10 = 0, total = 0;
  for (const auto& scenario : scenarios) {
    for (const auto& path : scenario.paths) {
      ++total;
      if (path.capacity_mbps < 1.0) ++below_1;
      if (path.capacity_mbps < 10.0) ++below_10;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_1) / total, 1.0 / 3.0, 0.12);
  EXPECT_NEAR(static_cast<double>(below_10) / total, 2.0 / 3.0, 0.12);
}

TEST(Scenarios, PathsAreIndependentlyParameterised) {
  const auto scenarios =
      GenerateScenarios(ScenarioClass::kLowBdpNoLoss, 50, 5);
  int different = 0;
  for (const auto& scenario : scenarios) {
    if (std::abs(scenario.paths[0].capacity_mbps -
                 scenario.paths[1].capacity_mbps) > 1e-9) {
      ++different;
    }
  }
  EXPECT_GT(different, 45);  // virtually always heterogeneous
}

TEST(Scenarios, ClassNamesRoundTrip) {
  EXPECT_EQ(ToString(ScenarioClass::kLowBdpNoLoss), "low-BDP-no-loss");
  EXPECT_EQ(ToString(ScenarioClass::kHighBdpLosses), "high-BDP-losses");
}

}  // namespace
}  // namespace mpq::expdesign
