// End-to-end (MP)QUIC tests over the simulated two-path network: a client
// requests a file, the server streams it back, and we check integrity,
// completion and multipath behaviours (aggregation, duplication on
// unknown paths, WINDOW_UPDATE on all paths, handover via PATHS frames).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "quic/endpoint.h"
#include "quic/streams.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace mpq::quic {
namespace {

constexpr StreamId kDataStream = StreamId{3};

/// Minimal request/response application used by the tests: the client
/// sends "GET <bytes>" on stream 3; the server answers with that many
/// pattern bytes (PatternByte(kDataStream, offset)) and FIN.
struct TestApp {
  sim::Simulator sim;
  sim::Network net{sim, Rng(4242)};
  sim::TwoPathTopology topo;
  std::unique_ptr<ServerEndpoint> server;
  std::unique_ptr<ClientEndpoint> client;

  ByteCount bytes_received{};
  ByteCount pattern_errors{};
  bool finished = false;
  TimePoint finish_time = -1;

  TestApp(const std::array<sim::PathParams, 2>& paths,
          const ConnectionConfig& config, int interfaces = 2)
      : topo(sim::BuildTwoPathTopology(net, paths)) {
    std::vector<sim::Address> server_locals(
        topo.server_addr.begin(), topo.server_addr.end());
    server = std::make_unique<ServerEndpoint>(sim, net, server_locals,
                                              config, /*seed=*/1);
    server->SetAcceptHandler([](Connection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler([&conn, request](
                                    StreamId id, ByteCount,
                                    std::span<const std::uint8_t> data,
                                    bool fin) {
        request->append(data.begin(), data.end());
        if (fin && id == kDataStream) {
          const ByteCount size = ByteCount{std::stoull(request->substr(4))};
          conn.SendOnStream(
              kDataStream, std::make_unique<PatternSource>(kDataStream, size));
        }
      });
    });

    std::vector<sim::Address> client_locals;
    for (int i = 0; i < interfaces; ++i) {
      client_locals.push_back(topo.client_addr[i]);
    }
    client = std::make_unique<ClientEndpoint>(sim, net, client_locals, config,
                                              /*seed=*/2);
    client->connection().SetStreamDataHandler(
        [this](StreamId, ByteCount offset,
               std::span<const std::uint8_t> data, bool fin) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (data[i] != PatternByte(kDataStream.value(), offset + i)) {
              ++pattern_errors;
            }
          }
          bytes_received += data.size();
          if (fin) {
            finished = true;
            finish_time = sim.now();
          }
        });
  }

  void Run(ByteCount download_size, TimePoint deadline = 600 * kSecond) {
    client->connection().SetEstablishedHandler([this, download_size] {
      const std::string request = "GET " + std::to_string(download_size.value());
      client->connection().SendOnStream(
          kDataStream,
          std::make_unique<BufferSource>(std::vector<std::uint8_t>(
              request.begin(), request.end())));
    });
    client->Connect(topo.server_addr[0]);
    while (!finished && sim.RunOne(deadline)) {
    }
  }
};

ConnectionConfig SinglePathConfig() {
  ConnectionConfig config;
  config.multipath = false;
  config.congestion = CongestionAlgo::kCubic;
  return config;
}

ConnectionConfig MultipathConfig() {
  ConnectionConfig config;
  config.multipath = true;
  config.congestion = CongestionAlgo::kOlia;
  return config;
}

std::array<sim::PathParams, 2> SymmetricPaths(double mbps, Duration rtt,
                                              double loss = 0.0) {
  sim::PathParams p;
  p.capacity_mbps = mbps;
  p.rtt = rtt;
  p.max_queue_delay = 50 * kMillisecond;
  p.random_loss_rate = loss;
  return {p, p};
}

TEST(QuicIntegration, SinglePathDownloadCompletesWithIntactData) {
  TestApp app(SymmetricPaths(10.0, 30 * kMillisecond), SinglePathConfig(),
              /*interfaces=*/1);
  app.Run(ByteCount{2 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 2u * 1024 * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
  // 2 MiB at 10 Mbps is ~1.7 s minimum; allow for slow start and acks.
  EXPECT_GT(app.finish_time, SecondsToDuration(1.5));
  EXPECT_LT(app.finish_time, SecondsToDuration(6.0));
}

TEST(QuicIntegration, HandshakeTakesOneRtt) {
  TestApp app(SymmetricPaths(10.0, 100 * kMillisecond), SinglePathConfig(),
              /*interfaces=*/1);
  TimePoint established_at = -1;
  app.client->connection().SetEstablishedHandler(
      [&] { established_at = app.sim.now(); });
  app.client->Connect(app.topo.server_addr[0]);
  app.sim.Run(2 * kSecond);
  ASSERT_GE(established_at, 0);
  // 1 RTT plus transmission/queueing of the two handshake packets.
  EXPECT_GE(established_at, 100 * kMillisecond);
  EXPECT_LE(established_at, 140 * kMillisecond);
}

TEST(QuicIntegration, MultipathAggregatesBandwidth) {
  // Two 8 Mbps paths: a single path needs ~10.5 s for 10 MiB, both
  // together ~5.2 s. Require meaningful aggregation.
  TestApp single(SymmetricPaths(8.0, 40 * kMillisecond), SinglePathConfig(),
                 /*interfaces=*/1);
  single.Run(ByteCount{10 * 1024 * 1024});
  ASSERT_TRUE(single.finished);

  TestApp multi(SymmetricPaths(8.0, 40 * kMillisecond), MultipathConfig());
  multi.Run(ByteCount{10 * 1024 * 1024});
  ASSERT_TRUE(multi.finished);
  EXPECT_EQ(multi.pattern_errors, 0u);
  EXPECT_LT(multi.finish_time, single.finish_time * 0.65);
}

TEST(QuicIntegration, MultipathUsesBothPathNumberSpaces) {
  TestApp app(SymmetricPaths(8.0, 40 * kMillisecond), MultipathConfig());
  app.Run(ByteCount{5 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  Connection* server_conn = nullptr;
  // The server has exactly one connection.
  // (Grab it via the endpoint's registry.)
  ASSERT_EQ(app.server->connection_count(), 1u);
  server_conn = app.server->FindConnection(app.client->connection().cid());
  ASSERT_NE(server_conn, nullptr);
  const auto paths = server_conn->paths();
  ASSERT_EQ(paths.size(), 2u);
  for (const Path* path : paths) {
    EXPECT_GT(path->bytes_sent(), 100u * 1024)
        << "path " << static_cast<int>(path->id()) << " barely used";
  }
}

TEST(QuicIntegration, LossyPathStillCompletesWithIntactData) {
  TestApp app(SymmetricPaths(10.0, 30 * kMillisecond, /*loss=*/0.02),
              SinglePathConfig(), /*interfaces=*/1);
  app.Run(ByteCount{1 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 1u * 1024 * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
}

TEST(QuicIntegration, MultipathLossyBothPathsCompletes) {
  TestApp app(SymmetricPaths(6.0, 50 * kMillisecond, /*loss=*/0.01),
              MultipathConfig());
  app.Run(ByteCount{2 * 1024 * 1024});
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.pattern_errors, 0u);
}

TEST(QuicIntegration, AsymmetricPathsPreferFasterForShortTransfer) {
  std::array<sim::PathParams, 2> paths = SymmetricPaths(10.0, 20 * kMillisecond);
  paths[1].rtt = 300 * kMillisecond;  // much slower second path
  TestApp app(paths, MultipathConfig());
  app.Run(ByteCount{64 * 1024});
  ASSERT_TRUE(app.finished);
  // A 64 KiB transfer should finish near the fast path's timescale, not
  // be held hostage by the slow one (no head-of-line blocking).
  EXPECT_LT(app.finish_time, SecondsToDuration(0.6));
}

TEST(QuicIntegration, HandoverViaPathsFrame) {
  // Fig. 11 setup: path 0 is faster (15 ms) than path 1 (25 ms); path 0
  // dies at t=3 s. Request/response continues over path 1.
  std::array<sim::PathParams, 2> paths = SymmetricPaths(10.0, 15 * kMillisecond);
  paths[1].rtt = 25 * kMillisecond;
  TestApp app(paths, MultipathConfig());

  // Custom app: 750-byte request every 400 ms, server echoes 750 bytes.
  // Reuse the file app but in a loop: simpler — issue one 512 KiB download
  // and kill path 0 mid-transfer; the transfer must still complete.
  app.client->connection().SetEstablishedHandler([&app] {
    const std::string request = "GET " + std::to_string(512 * 1024);
    app.client->connection().SendOnStream(
        kDataStream, std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                         request.begin(), request.end())));
  });
  app.client->Connect(app.topo.server_addr[0]);
  app.sim.Schedule(1 * kSecond, [&app] {
    app.topo.forward[0]->SetRandomLossRate(1.0);
    app.topo.backward[0]->SetRandomLossRate(1.0);
  });
  while (!app.finished && app.sim.RunOne(60 * kSecond)) {
  }
  ASSERT_TRUE(app.finished);
  EXPECT_EQ(app.bytes_received, 512u * 1024);
  EXPECT_EQ(app.pattern_errors, 0u);
  // After failure detection everything flows over path 1; the transfer
  // must finish well before the 60 s guard.
  EXPECT_LT(app.finish_time, 20 * kSecond);
}

}  // namespace
}  // namespace mpq::quic
