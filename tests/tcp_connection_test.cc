// Connection-level TCP/MPTCP tests: TLS phase gating, receive-window
// blocking and the persist probe, ORP reinjection, subflow-join timing,
// configuration knobs (SACK budget, lost-retransmission blind spot), and
// determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/source.h"
#include "sim/topology.h"
#include "tcpsim/endpoint.h"

namespace mpq::tcp {
namespace {

struct Fixture {
  sim::Simulator sim;
  sim::Network net{sim, Rng(4)};
  sim::TwoPathTopology topo;
  std::unique_ptr<TcpServerEndpoint> server;
  std::unique_ptr<TcpClientEndpoint> client;
  ByteCount received{};
  bool finished = false;
  TimePoint secure_at = -1;

  explicit Fixture(const TcpConfig& config,
                   std::array<sim::PathParams, 2> paths = DefaultPaths(),
                   int interfaces = 2)
      : topo(sim::BuildTwoPathTopology(net, paths)) {
    server = std::make_unique<TcpServerEndpoint>(
        sim, net,
        std::vector<sim::Address>(topo.server_addr.begin(),
                                  topo.server_addr.end()),
        config, 1);
    server->SetAcceptHandler([](TcpConnection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetAppDataHandler([&conn, request](
                                 ByteCount, std::span<const std::uint8_t> d,
                                 bool) {
        request->append(d.begin(), d.end());
        if (!request->empty() && request->back() == '\n') {
          const ByteCount n = ByteCount{std::stoull(request->substr(4))};
          request->clear();
          conn.SendAppData(std::make_unique<PatternSource>(7, n));
        }
      });
    });
    std::vector<sim::Address> locals;
    for (int i = 0; i < interfaces; ++i) {
      locals.push_back(topo.client_addr[i]);
    }
    client = std::make_unique<TcpClientEndpoint>(sim, net, locals, config, 2);
    client->connection().SetAppDataHandler(
        [this](ByteCount, std::span<const std::uint8_t> d, bool eof) {
          received += d.size();
          if (eof) finished = true;
        });
  }

  static std::array<sim::PathParams, 2> DefaultPaths() {
    sim::PathParams p;
    p.capacity_mbps = 10;
    p.rtt = 40 * kMillisecond;
    p.max_queue_delay = 50 * kMillisecond;
    p.per_packet_overhead = ByteCount{20};
    return {p, p};
  }

  void Run(ByteCount size, int interfaces = 2,
           TimePoint deadline = 300 * kSecond) {
    client->connection().SetSecureEstablishedHandler([this, size] {
      secure_at = sim.now();
      const std::string request = "GET " + std::to_string(size.value()) + "\n";
      client->connection().SendAppData(std::make_unique<BufferSource>(
          std::vector<std::uint8_t>(request.begin(), request.end())));
    });
    std::vector<sim::Address> remotes;
    for (int i = 0; i < interfaces; ++i) {
      remotes.push_back(topo.server_addr[i]);
    }
    client->Connect(remotes);
    while (!finished && sim.RunOne(deadline)) {
    }
  }
};

TcpConfig Mptcp() {
  TcpConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;
  return config;
}

TEST(TcpConnection, TlsBytesDoNotLeakIntoAppStream) {
  // The app handler must see exactly the response bytes with offsets
  // starting at 0, never the 3.1 KB of modelled TLS handshake.
  Fixture fx(Mptcp());
  ByteCount first_offset = ByteCount{1};
  fx.client->connection().SetAppDataHandler(
      [&](ByteCount offset, std::span<const std::uint8_t> d, bool eof) {
        if (first_offset == 1 && !d.empty()) first_offset = offset;
        fx.received += d.size();
        if (eof) fx.finished = true;
      });
  fx.Run(ByteCount{100 * 1024});
  ASSERT_TRUE(fx.finished);
  EXPECT_EQ(first_offset, 0u);
  EXPECT_EQ(fx.received, 100u * 1024);
}

TEST(TcpConnection, NoTlsModeSkipsTheTwoExtraRtts) {
  TcpConfig with = Mptcp();
  TcpConfig without = Mptcp();
  without.use_tls = false;
  Fixture a(with), b(without);
  a.Run(ByteCount{1024});
  b.Run(ByteCount{1024});
  ASSERT_TRUE(a.finished && b.finished);
  // TLS costs 2 extra RTTs (80 ms here) plus the certificate bytes.
  EXPECT_GT(a.secure_at, b.secure_at + 70 * kMillisecond);
}

TEST(TcpConnection, SecondSubflowJoinsOneRttAfterTheFirst) {
  Fixture fx(Mptcp());
  fx.Run(ByteCount{512 * 1024});
  ASSERT_TRUE(fx.finished);
  TcpConnection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  ASSERT_NE(server_conn, nullptr);
  ASSERT_EQ(server_conn->subflows().size(), 2u);
  for (const Subflow* subflow : server_conn->subflows()) {
    EXPECT_TRUE(subflow->established());
  }
}

TEST(TcpConnection, TinyReceiveWindowStillCompletes) {
  TcpConfig config = Mptcp();
  config.receive_window = ByteCount{32 * 1024};
  Fixture fx(config);
  fx.Run(ByteCount{1 * 1024 * 1024});
  EXPECT_TRUE(fx.finished);
  EXPECT_EQ(fx.received, 1u * 1024 * 1024);
}

TEST(TcpConnection, OrpTriggersWhenWindowLimited) {
  // ORP needs three ingredients (Raiciu et al.): the fast subflow is
  // congestion-limited (small capacity + shallow buffer), so the
  // scheduler spills data onto a much slower subflow; that data then
  // blocks the small shared receive window; the idle fast subflow
  // reinjects it and penalizes the slow one.
  TcpConfig config = Mptcp();
  config.receive_window = ByteCount{48 * 1024};
  auto paths = Fixture::DefaultPaths();
  paths[0].capacity_mbps = 2.0;
  paths[0].max_queue_delay = 20 * kMillisecond;
  paths[1].capacity_mbps = 2.0;
  paths[1].rtt = 400 * kMillisecond;
  Fixture fx(config, paths);
  fx.Run(ByteCount{2 * 1024 * 1024});
  ASSERT_TRUE(fx.finished);
  TcpConnection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_GT(server_conn->stats().orp_reinjections, 0u);
}

TEST(TcpConnection, OrpCanBeDisabled) {
  TcpConfig config = Mptcp();
  config.receive_window = ByteCount{64 * 1024};
  config.enable_orp = false;
  auto paths = Fixture::DefaultPaths();
  paths[1].capacity_mbps = 0.5;
  paths[1].rtt = 300 * kMillisecond;
  Fixture fx(config, paths);
  fx.Run(ByteCount{1 * 1024 * 1024});
  ASSERT_TRUE(fx.finished);  // slower, but must not deadlock
  TcpConnection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_EQ(server_conn->stats().orp_reinjections, 0u);
}

TEST(TcpConnection, SackBudgetKnobIsPlumbedThrough) {
  for (int blocks : {1, 3, 64}) {
    TcpConfig config = Mptcp();
    config.max_sack_blocks = blocks;
    auto paths = Fixture::DefaultPaths();
    paths[0].random_loss_rate = 0.02;
    paths[1].random_loss_rate = 0.02;
    Fixture fx(config, paths);
    fx.Run(ByteCount{512 * 1024});
    EXPECT_TRUE(fx.finished) << blocks << " SACK blocks";
    EXPECT_EQ(fx.received, 512u * 1024);
  }
}

TEST(TcpConnection, LostRetransmissionKnobChangesBehaviour) {
  // With the pre-RACK blind spot, lossy transfers should see at least as
  // many RTOs as the modern variant (usually strictly more).
  auto run = [](bool blind_spot) {
    TcpConfig config;
    config.lost_retransmission_needs_rto = blind_spot;
    auto paths = Fixture::DefaultPaths();
    paths[0].random_loss_rate = 0.03;
    paths[1].random_loss_rate = 0.03;
    Fixture fx(config, paths, /*interfaces=*/1);
    fx.Run(ByteCount{2 * 1024 * 1024}, /*interfaces=*/1);
    EXPECT_TRUE(fx.finished);
    TcpConnection* server_conn =
        fx.server->FindConnection(fx.client->connection().cid());
    return server_conn->GetSubflow(0)->rto_count();
  };
  EXPECT_GE(run(true), run(false));
}

TEST(TcpConnection, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    auto paths = Fixture::DefaultPaths();
    paths[0].random_loss_rate = 0.01;
    Fixture fx(Mptcp(), paths);
    fx.Run(ByteCount{512 * 1024});
    return std::tuple(fx.sim.now(), fx.received);
  };
  EXPECT_EQ(run(), run());
}

TEST(TcpConnection, SinglePathIgnoresSecondInterface) {
  TcpConfig config;  // multipath off
  Fixture fx(config, Fixture::DefaultPaths(), /*interfaces=*/1);
  fx.Run(ByteCount{256 * 1024}, /*interfaces=*/1);
  ASSERT_TRUE(fx.finished);
  TcpConnection* server_conn =
      fx.server->FindConnection(fx.client->connection().cid());
  EXPECT_EQ(server_conn->subflows().size(), 1u);
}

}  // namespace
}  // namespace mpq::tcp
