// Unit tests for the RecoveryManager layer against a fake delegate — no
// simulated network, no Connection. Covers the frame-level requeue rules
// (§3: a frame from a lost packet may be retransmitted on any path), the
// RTO / potentially-failed machinery (§4.3) and the retransmit counters.
#include "quic/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "cc/newreno.h"
#include "common/types.h"
#include "quic/path.h"
#include "quic/stats.h"
#include "quic/wire.h"
#include "sim/simulator.h"

namespace mpq::quic {
namespace {

constexpr ByteCount kMss{1350};

class FakeDelegate : public RecoveryDelegate {
 public:
  void OnStreamFrameLost(StreamId stream, ByteCount offset, ByteCount length,
                         bool fin) override {
    stream_losses.push_back({stream, offset, length, fin});
  }
  void RequeueWindowUpdate(const WindowUpdateFrame& frame) override {
    window_updates.push_back(frame);
  }
  void RequeuePathsSnapshot() override { ++paths_snapshots; }
  void RequeueControlFrame(Frame frame) override {
    control_requeued.push_back(std::move(frame));
  }
  bool OnPathPotentiallyFailed(PathId path) override {
    failed_paths.push_back(path);
    return probe_on_failure;
  }
  void OnPathRecovered(PathId path) override {
    recovered_paths.push_back(path);
  }
  void SendProbePing(PathId path) override { probe_pings.push_back(path); }
  void RequestSend() override { ++send_requests; }
  void RunAudit() override {}

  struct StreamLoss {
    StreamId stream;
    ByteCount offset;
    ByteCount length;
    bool fin;
  };
  std::vector<StreamLoss> stream_losses;
  std::vector<WindowUpdateFrame> window_updates;
  std::vector<Frame> control_requeued;
  std::vector<PathId> failed_paths;
  std::vector<PathId> recovered_paths;
  std::vector<PathId> probe_pings;
  int paths_snapshots = 0;
  int send_requests = 0;
  bool probe_on_failure = true;
};

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : recovery_(sim_, stats_, 1 * kSecond, 15 * kSecond, delegate_),
        path_(PathId{0}, {1, 0}, {2, 0}, std::make_unique<cc::NewReno>(kMss)) {
    recovery_.RegisterPath(path_);
  }

  SentPacket MakeSent(PacketNumber pn, std::vector<Frame> frames) {
    SentPacket packet;
    packet.pn = pn;
    packet.sent_time = sim_.now();
    packet.bytes = kMss;
    packet.frames = std::move(frames);
    return packet;
  }

  StreamFrame MakeStreamFrame(StreamId id, ByteCount offset,
                              std::size_t length, bool fin = false) {
    StreamFrame frame;
    frame.stream_id = id;
    frame.offset = offset;
    frame.fin = fin;
    frame.data.assign(length, 0xAB);
    return frame;
  }

  /// Put one retransmittable packet in flight and let recovery track it.
  void SendTracked(std::vector<Frame> frames) {
    SentPacket packet = MakeSent(path_.AllocatePacketNumber(),
                                 std::move(frames));
    path_.OnPacketSent(std::move(packet));
    recovery_.OnPacketTracked(path_);
  }

  sim::Simulator sim_;
  ConnectionStats stats_;
  FakeDelegate delegate_;
  RecoveryManager recovery_;
  Path path_;
};

TEST_F(RecoveryTest, RequeuePreservesStreamFrameOrder) {
  std::vector<SentPacket> lost;
  lost.push_back(MakeSent(
      PacketNumber{1},
      {MakeStreamFrame(StreamId{1}, ByteCount{0}, 500),
       MakeStreamFrame(StreamId{1}, ByteCount{500}, 500)}));
  lost.push_back(MakeSent(
      PacketNumber{2},
      {MakeStreamFrame(StreamId{3}, ByteCount{0}, 200, /*fin=*/true)}));
  recovery_.RequeueLostFrames(PathId{0}, std::move(lost));

  ASSERT_EQ(delegate_.stream_losses.size(), 3u);
  EXPECT_EQ(delegate_.stream_losses[0].stream, StreamId{1});
  EXPECT_EQ(delegate_.stream_losses[0].offset, ByteCount{0});
  EXPECT_EQ(delegate_.stream_losses[1].stream, StreamId{1});
  EXPECT_EQ(delegate_.stream_losses[1].offset, ByteCount{500});
  EXPECT_EQ(delegate_.stream_losses[2].stream, StreamId{3});
  EXPECT_TRUE(delegate_.stream_losses[2].fin);
}

TEST_F(RecoveryTest, LostHandshakeCleartextRequeuedAsControlFrame) {
  // A lost handshake frame must go back out reliably, and through the
  // control queue — which the assembler serves AHEAD of stream data (see
  // assembler_test's ControlFramesPrecedeStreamData for that half).
  HandshakeFrame chlo;
  chlo.message = HandshakeMessageType::kChlo;
  chlo.nonce.assign(16, 0x42);
  std::vector<SentPacket> lost;
  lost.push_back(MakeSent(PacketNumber{1},
                          {Frame{chlo},
                           MakeStreamFrame(StreamId{1}, ByteCount{0}, 100)}));
  recovery_.RequeueLostFrames(PathId{0}, std::move(lost));

  ASSERT_EQ(delegate_.control_requeued.size(), 1u);
  const auto* requeued =
      std::get_if<HandshakeFrame>(&delegate_.control_requeued.front());
  ASSERT_NE(requeued, nullptr);
  EXPECT_EQ(requeued->nonce, chlo.nonce);
  EXPECT_EQ(delegate_.stream_losses.size(), 1u);
}

TEST_F(RecoveryTest, ControlFramesRoutedByType) {
  WindowUpdateFrame window{StreamId{0}, ByteCount{1 << 20}};
  AddAddressFrame add{{{3, 1}}};
  std::vector<SentPacket> lost;
  lost.push_back(MakeSent(PacketNumber{1},
                          {Frame{window}, Frame{PathsFrame{}}, Frame{add}}));
  recovery_.RequeueLostFrames(PathId{0}, std::move(lost));

  ASSERT_EQ(delegate_.window_updates.size(), 1u);
  EXPECT_EQ(delegate_.window_updates.front().max_data, window.max_data);
  EXPECT_EQ(delegate_.paths_snapshots, 1);
  ASSERT_EQ(delegate_.control_requeued.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<AddAddressFrame>(
      delegate_.control_requeued.front()));
}

TEST_F(RecoveryTest, RetransmitStatsCountOnlyRequeuedFrames) {
  // PINGs from lost packets are dropped, not retransmitted (the probe
  // timer re-issues them), so they must not inflate the counters.
  const StreamFrame stream = MakeStreamFrame(StreamId{1}, ByteCount{0}, 300);
  const std::size_t stream_wire_size = FrameWireSize(Frame{stream});
  std::vector<SentPacket> lost;
  lost.push_back(MakeSent(PacketNumber{1}, {Frame{PingFrame{}},
                                            Frame{stream}}));
  recovery_.RequeueLostFrames(PathId{0}, std::move(lost));

  EXPECT_EQ(stats_.frames_retransmitted, 1u);
  EXPECT_EQ(stats_.bytes_retransmitted, ByteCount{stream_wire_size});
  EXPECT_TRUE(delegate_.control_requeued.empty());
  EXPECT_EQ(delegate_.stream_losses.size(), 1u);
}

TEST_F(RecoveryTest, RtoRequeuesMarksPathFailedAndStartsProbing) {
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 1000)});
  ASSERT_TRUE(path_.HasInFlight());

  // Run past the (backed-off) RTO but not to the second probe.
  sim_.Run(sim_.now() + 1500 * kMillisecond);

  EXPECT_EQ(stats_.rto_events, 1u);
  EXPECT_TRUE(path_.potentially_failed());
  ASSERT_EQ(delegate_.failed_paths.size(), 1u);
  EXPECT_EQ(delegate_.failed_paths.front(), PathId{0});
  EXPECT_EQ(delegate_.stream_losses.size(), 1u);
  EXPECT_GE(delegate_.send_requests, 1);
  EXPECT_EQ(stats_.frames_retransmitted, 1u);

  // The probe timer keeps pinging at the configured interval.
  const std::size_t pings_before = delegate_.probe_pings.size();
  sim_.Run(sim_.now() + 2500 * kMillisecond);
  EXPECT_GE(delegate_.probe_pings.size(), pings_before + 2);
}

TEST_F(RecoveryTest, NoProbeTimerWhenDelegateDeclines) {
  // migrate-on-failure mode: the delegate migrates instead of probing.
  delegate_.probe_on_failure = false;
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 1000)});
  sim_.Run(sim_.now() + 5 * kSecond);

  EXPECT_EQ(delegate_.failed_paths.size(), 1u);
  EXPECT_TRUE(delegate_.probe_pings.empty());
}

TEST_F(RecoveryTest, AckRecoversPotentiallyFailedPath) {
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 1000)});
  path_.set_potentially_failed(true);

  AckFrame ack;
  ack.path_id = PathId{0};
  ack.ranges = {{PacketNumber{1}, PacketNumber{1}}};
  recovery_.OnAckReceived(path_, ack);

  EXPECT_FALSE(path_.potentially_failed());
  ASSERT_EQ(delegate_.recovered_paths.size(), 1u);
  EXPECT_EQ(delegate_.recovered_paths.front(), PathId{0});
  EXPECT_FALSE(path_.HasInFlight());
}

TEST_F(RecoveryTest, AckedPingClearsProbeBookkeeping) {
  SendTracked({Frame{PingFrame{}}});
  recovery_.set_ping_probe_outstanding(PathId{0}, true);

  AckFrame ack;
  ack.path_id = PathId{0};
  ack.ranges = {{PacketNumber{1}, PacketNumber{1}}};
  recovery_.OnAckReceived(path_, ack);

  EXPECT_FALSE(recovery_.ping_probe_outstanding(PathId{0}));
}

TEST_F(RecoveryTest, RtoBackoffCappedAtMaxRto) {
  // Chaos regression (long-flap family): without a ceiling the doubled
  // RTO reaches 500 ms << 6 = 32 s, so after an outage heals the path
  // could sit half a minute from its next retransmission. The cap bounds
  // the gap between consecutive RTOs at max_rto (15 s here).
  Duration max_gap = 0;
  for (int i = 0; i < 10; ++i) {
    SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 100)});
    const std::uint64_t events_before = stats_.rto_events;
    const TimePoint sent_at = sim_.now();
    while (stats_.rto_events == events_before) {
      ASSERT_TRUE(sim_.RunOne(10 * 60 * kSecond));
    }
    max_gap = std::max(max_gap, sim_.now() - sent_at);
  }
  EXPECT_EQ(path_.rto_count(), 10);  // the count keeps backing off...
  EXPECT_LE(max_gap, 15 * kSecond + kSecond);  // ...the timer does not
  EXPECT_GT(max_gap, 10 * kSecond);  // and the cap genuinely binds
}

TEST_F(RecoveryTest, OnlyGenuineAckResetsRtoBackoff) {
  // Build up backoff with two RTOs.
  for (int i = 0; i < 2; ++i) {
    SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 100)});
    const std::uint64_t events_before = stats_.rto_events;
    while (stats_.rto_events == events_before) {
      ASSERT_TRUE(sim_.RunOne(10 * 60 * kSecond));
    }
  }
  EXPECT_EQ(path_.rto_count(), 2);

  // An ACK that covers only already-lost packets acks nothing new and
  // must not reset the backoff (stale ACKs surface during flaps).
  AckFrame stale;
  stale.path_id = PathId{0};
  stale.ranges = {{PacketNumber{1}, PacketNumber{2}}};
  recovery_.OnAckReceived(path_, stale);
  EXPECT_EQ(path_.rto_count(), 2);

  // A genuine ACK of in-flight data does.
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 100)});
  AckFrame genuine;
  genuine.path_id = PathId{0};
  genuine.ranges = {{PacketNumber{1}, PacketNumber{3}}};
  recovery_.OnAckReceived(path_, genuine);
  EXPECT_EQ(path_.rto_count(), 0);
}

TEST_F(RecoveryTest, OptimisticAckForUnsentPacketNumbersIsIgnored) {
  // Fuzz regression (forged-frame family, caught by the MPQ_AUDIT
  // largest_acked < next_pn invariant): an ACK acknowledging packet
  // numbers this path never allocated used to be taken at face value.
  // That drags largest_acked past the send horizon, and because
  // packet-threshold loss detection declares everything more than
  // kReorderingThreshold below largest_acked lost, one forged ACK
  // spuriously retransmits the entire in-flight window.
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 1000)});
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{1000}, 1000)});

  AckFrame forged;
  forged.path_id = PathId{0};
  forged.ranges = {{PacketNumber{90}, PacketNumber{120}}};
  recovery_.OnAckReceived(path_, forged);

  EXPECT_EQ(stats_.invalid_acks_ignored, 1u);
  EXPECT_EQ(path_.largest_acked(), PacketNumber{0});
  EXPECT_TRUE(path_.HasInFlight());  // nothing declared lost or acked
  EXPECT_TRUE(delegate_.stream_losses.empty());

  // An honest ACK of what is actually outstanding still works.
  AckFrame genuine;
  genuine.path_id = PathId{0};
  genuine.ranges = {{PacketNumber{1}, PacketNumber{2}}};
  recovery_.OnAckReceived(path_, genuine);
  EXPECT_EQ(path_.largest_acked(), PacketNumber{2});
  EXPECT_FALSE(path_.HasInFlight());
}

TEST_F(RecoveryTest, CloseStopsAllTimers) {
  SendTracked({MakeStreamFrame(StreamId{1}, ByteCount{0}, 1000)});
  recovery_.OnConnectionClosed();
  sim_.Run();

  EXPECT_EQ(stats_.rto_events, 0u);
  EXPECT_TRUE(delegate_.stream_losses.empty());
  EXPECT_TRUE(delegate_.probe_pings.empty());
}

}  // namespace
}  // namespace mpq::quic
