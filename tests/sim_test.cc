// Unit tests for the discrete-event simulator and the network model:
// event ordering, timers, link bandwidth/propagation math, drop-tail
// queues, random loss, routing, and the Fig. 2 topology builder.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "sim/topology.h"

namespace mpq::sim {
namespace {

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.Schedule(100, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.Cancel(999);  // must not crash or affect anything
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.Schedule(10, recurse);
  };
  sim.Schedule(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 90);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(i * 100, [&] { ++count; });
  }
  sim.Run(/*until=*/450);
  EXPECT_EQ(count, 4);
  sim.Run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, PastDeadlineClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [&] {
    TimePoint fired_at = -1;
    sim.ScheduleAt(50, [&, start = sim.now()] { fired_at = sim.now(); });
    (void)fired_at;
  });
  sim.Run();  // must not hang or go backwards
  EXPECT_EQ(sim.now(), 100);
}

TEST(Timer, RearmAndCancel) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.SetIn(100);
  timer.SetIn(200);  // re-arm replaces the old deadline
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);

  timer.SetIn(100);
  timer.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, ArmedStateTracksLifecycle) {
  Simulator sim;
  Timer timer(sim, [] {});
  EXPECT_FALSE(timer.armed());
  timer.SetIn(10);
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.deadline(), 10);
  sim.Run();
  EXPECT_FALSE(timer.armed());
}

// ---------------------------------------------------------------------------
// Links

LinkConfig MakeLink(double mbps, Duration prop, ByteCount queue = ByteCount{1 << 20},
                    double loss = 0.0) {
  LinkConfig c;
  c.capacity_mbps = mbps;
  c.propagation_delay = prop;
  c.queue_capacity_bytes = queue;
  c.random_loss_rate = loss;
  c.per_packet_overhead = ByteCount{0};  // keep the math exact for tests
  return c;
}

TEST(Link, DeliveryDelayIsTransmissionPlusPropagation) {
  Simulator sim;
  Link link(sim, MakeLink(8.0, 10 * kMillisecond), Rng(1));
  TimePoint delivered_at = -1;
  link.SetDeliveryHandler([&](Datagram&&) { delivered_at = sim.now(); });
  // 1000 bytes at 8 Mbps = 1 ms serialization + 10 ms propagation.
  link.Transmit({{}, {}, std::vector<std::uint8_t>(1000)});
  sim.Run();
  EXPECT_EQ(delivered_at, 11 * kMillisecond);
}

TEST(Link, BackToBackPacketsSerialize) {
  Simulator sim;
  Link link(sim, MakeLink(8.0, 0), Rng(1));
  std::vector<TimePoint> deliveries;
  link.SetDeliveryHandler([&](Datagram&&) { deliveries.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>(1000)});
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], 1 * kMillisecond);
  EXPECT_EQ(deliveries[1], 2 * kMillisecond);
  EXPECT_EQ(deliveries[2], 3 * kMillisecond);
}

TEST(Link, QueueOverflowDropsTail) {
  Simulator sim;
  // Queue of 3000 bytes: two 1000-byte packets queue (one transmitting,
  // one waiting), subsequent ones drop until space frees.
  Link link(sim, MakeLink(8.0, 0, /*queue=*/ByteCount{3000}), Rng(1));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>(1000)});
  }
  sim.Run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().dropped_queue_full, 7u);
  EXPECT_EQ(link.stats().offered, 10u);
}

TEST(Link, QueueDrainsOverTime) {
  Simulator sim;
  Link link(sim, MakeLink(8.0, 0, /*queue=*/ByteCount{3000}), Rng(1));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });
  // Offer one packet per 2 ms — well under capacity; nothing must drop.
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(i * 2 * kMillisecond, [&link] {
      link.Transmit({{}, {}, std::vector<std::uint8_t>(1000)});
    });
  }
  sim.Run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(link.stats().dropped_queue_full, 0u);
}

TEST(Link, RandomLossRateIsApplied) {
  Simulator sim;
  Link link(sim, MakeLink(1000.0, 0, ByteCount{1 << 24}, /*loss=*/0.3), Rng(5));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sim.Schedule(i * 20, [&link] {
      link.Transmit({{}, {}, std::vector<std::uint8_t>(100)});
    });
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(link.stats().dropped_random) / n, 0.3,
              0.02);
}

TEST(Link, LossRateChangeMidRunTakesEffect) {
  Simulator sim;
  Link link(sim, MakeLink(1000.0, 0), Rng(5));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });
  link.Transmit({{}, {}, std::vector<std::uint8_t>(100)});
  sim.Run();
  EXPECT_EQ(delivered, 1);
  link.SetRandomLossRate(1.0);  // the handover scenario's "path dies"
  for (int i = 0; i < 50; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>(100)});
  }
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, PerPacketOverheadCountsOnWire) {
  Simulator sim;
  LinkConfig c = MakeLink(8.0, 0);
  c.per_packet_overhead = ByteCount{28};
  Link link(sim, c, Rng(1));
  TimePoint delivered_at = -1;
  link.SetDeliveryHandler([&](Datagram&&) { delivered_at = sim.now(); });
  link.Transmit({{}, {}, std::vector<std::uint8_t>(972)});  // 1000 on wire
  sim.Run();
  EXPECT_EQ(delivered_at, 1 * kMillisecond);
}

TEST(Link, ZeroCapacityRejected) {
  Simulator sim;
  LinkConfig c = MakeLink(0.0, 0);
  EXPECT_THROW(Link(sim, c, Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Network routing and sockets

TEST(Network, RoutesBySourceInterface) {
  Simulator sim;
  Network net(sim, Rng(3));
  const Address a{1, 0}, b{2, 0};
  net.AddDuplexLink(a, b, MakeLink(10, kMillisecond), MakeLink(10, kMillisecond));
  auto* sa = net.CreateSocket(a);
  auto* sb = net.CreateSocket(b);
  int got_at_b = 0, got_at_a = 0;
  sb->SetReceiveHandler([&](const Datagram& d) {
    ++got_at_b;
    EXPECT_EQ(d.src, a);
  });
  sa->SetReceiveHandler([&](const Datagram&) { ++got_at_a; });
  sa->Send(b, std::vector<std::uint8_t>(100));
  sim.Run();
  EXPECT_EQ(got_at_b, 1);
  sb->Send(a, std::vector<std::uint8_t>(100));
  sim.Run();
  EXPECT_EQ(got_at_a, 1);
}

TEST(Network, UnroutableDestinationIsDropped) {
  Simulator sim;
  Network net(sim, Rng(3));
  const Address a{1, 0}, b{2, 0}, c{3, 0};
  net.AddDuplexLink(a, b, MakeLink(10, 0), MakeLink(10, 0));
  auto* sa = net.CreateSocket(a);
  sa->Send(c, std::vector<std::uint8_t>(10));  // no link a->c
  sim.Run();  // must not crash; nothing delivered
  SUCCEED();
}

TEST(Network, DoubleBindThrows) {
  Simulator sim;
  Network net(sim, Rng(3));
  net.CreateSocket({1, 0});
  EXPECT_THROW(net.CreateSocket({1, 0}), std::invalid_argument);
}

TEST(Network, RebindAfterCloseWorks) {
  Simulator sim;
  Network net(sim, Rng(3));
  net.CreateSocket({1, 0});
  net.CloseSocket({1, 0});
  EXPECT_NO_THROW(net.CreateSocket({1, 0}));
}

// ---------------------------------------------------------------------------
// Topology

TEST(Topology, QueueCapacityFromQueuingDelay) {
  // 8 Mbps * 100 ms = 100 KB of buffer.
  EXPECT_EQ(QueueCapacityBytes(8.0, 100 * kMillisecond), 100'000u);
}

TEST(Topology, BuildsTwoDisjointDuplexPaths) {
  Simulator sim;
  Network net(sim, Rng(4));
  std::array<PathParams, 2> params;
  params[0].capacity_mbps = 10;
  params[0].rtt = 40 * kMillisecond;
  params[1].capacity_mbps = 2;
  params[1].rtt = 100 * kMillisecond;
  auto topo = BuildTwoPathTopology(net, params);

  // Propagation is RTT/2 per direction.
  EXPECT_EQ(topo.forward[0]->config().propagation_delay, 20 * kMillisecond);
  EXPECT_EQ(topo.backward[1]->config().propagation_delay, 50 * kMillisecond);

  // End-to-end echo over each path.
  for (int i = 0; i < 2; ++i) {
    auto* cs = net.CreateSocket(topo.client_addr[i]);
    auto* ss = net.CreateSocket(topo.server_addr[i]);
    bool echoed = false;
    ss->SetReceiveHandler([&, ss](const Datagram& d) {
      ss->Send(d.src, std::vector<std::uint8_t>(10));
    });
    cs->SetReceiveHandler([&](const Datagram&) { echoed = true; });
    cs->Send(topo.server_addr[i], std::vector<std::uint8_t>(10));
    sim.Run();
    EXPECT_TRUE(echoed) << "path " << i;
  }
}


TEST(Link, JitterBoundsAndReorders) {
  Simulator sim;
  LinkConfig c = MakeLink(1000.0, 10 * kMillisecond);
  c.jitter = 5 * kMillisecond;
  Link link(sim, c, Rng(9));
  std::vector<int> arrival_order;
  std::vector<TimePoint> send_times;
  int next_tag = 0;
  link.SetDeliveryHandler([&](Datagram&& d) {
    arrival_order.push_back(d.payload[0]);
  });
  // 50 small packets in a burst: with 5 ms of jitter over ~0.8 us
  // serialization gaps, reordering is certain.
  for (int i = 0; i < 50; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>{
                               static_cast<std::uint8_t>(next_tag++)}});
    send_times.push_back(sim.now());
  }
  sim.Run();
  ASSERT_EQ(arrival_order.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < arrival_order.size(); ++i) {
    if (arrival_order[i] < arrival_order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
  // Everything still arrives within base + jitter + serialization time.
  EXPECT_LE(sim.now(), 10 * kMillisecond + 5 * kMillisecond +
                           1 * kMillisecond);
}

TEST(Link, DownLinkEatsEverythingUntilUp) {
  Simulator sim;
  Link link(sim, MakeLink(8.0, 1 * kMillisecond), Rng(1));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });

  link.SetDown(true);
  for (int i = 0; i < 5; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>(100)});
  }
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().dropped_link_down, 5u);

  link.SetDown(false);
  link.Transmit({{}, {}, std::vector<std::uint8_t>(100)});
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, DownAppliedMidSerializationEatsPacket) {
  // A packet still on the serializer when the link goes down is lost
  // with it (the wire went dark), exactly like rate-1.0 random loss.
  // 1000 B at 0.8 Mbps = 10 ms serialization; the cut lands at 2 ms.
  Simulator sim;
  Link link(sim, MakeLink(0.8, 10 * kMillisecond), Rng(1));
  int delivered = 0;
  link.SetDeliveryHandler([&](Datagram&&) { ++delivered; });
  link.Transmit({{}, {}, std::vector<std::uint8_t>(1000)});
  sim.Schedule(2 * kMillisecond, [&] { link.SetDown(true); });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().dropped_link_down, 1u);
}

TEST(Link, GilbertElliottBurstsLoss) {
  // With sticky states (rare transitions) and loss only in the bad
  // state, drops must arrive in runs, not independently.
  Simulator sim;
  LinkConfig config = MakeLink(1000.0, 0);
  config.gilbert_elliott.enabled = true;
  config.gilbert_elliott.good_to_bad = 0.02;
  config.gilbert_elliott.bad_to_good = 0.1;
  config.gilbert_elliott.loss_good = 0.0;
  config.gilbert_elliott.loss_bad = 1.0;
  Link link(sim, config, Rng(7));
  std::vector<bool> outcome;  // true = delivered
  int sent = 0;
  link.SetDeliveryHandler([&](Datagram&& d) {
    outcome[d.payload[0]] = true;
  });
  for (int i = 0; i < 200; ++i) {
    outcome.push_back(false);
    link.Transmit({{}, {}, std::vector<std::uint8_t>{
                               static_cast<std::uint8_t>(sent++)}});
    sim.Run();
  }
  int losses = 0;
  int loss_runs = 0;
  for (std::size_t i = 0; i < outcome.size(); ++i) {
    if (outcome[i]) continue;
    ++losses;
    if (i == 0 || outcome[i - 1]) ++loss_runs;
  }
  EXPECT_GT(losses, 10);
  EXPECT_LT(losses, 190);
  // Bursty: far fewer runs than losses (independent loss at the same
  // rate would give runs ~= losses).
  EXPECT_LT(loss_runs * 2, losses);
}

TEST(Link, ApplyFaultReconfiguresCapacityAndDelay) {
  Simulator sim;
  Link link(sim, MakeLink(8.0, 10 * kMillisecond), Rng(1));
  LinkFault fault;
  fault.kind = LinkFault::Kind::kReconfigure;
  fault.capacity_mbps = 16.0;
  fault.propagation_delay = 20 * kMillisecond;
  link.ApplyFault(fault);
  EXPECT_EQ(link.config().capacity_mbps, 16.0);
  EXPECT_EQ(link.config().propagation_delay, 20 * kMillisecond);

  // Zero-valued fields leave the current configuration untouched.
  LinkFault partial;
  partial.kind = LinkFault::Kind::kReconfigure;
  partial.propagation_delay = 5 * kMillisecond;
  link.ApplyFault(partial);
  EXPECT_EQ(link.config().capacity_mbps, 16.0);
  EXPECT_EQ(link.config().propagation_delay, 5 * kMillisecond);
}

TEST(Topology, ScheduledFaultsApplyToBothDirectionsAndNotify) {
  Simulator sim;
  Network net(sim, Rng(4));
  std::array<PathParams, 2> params;
  auto topo = BuildTwoPathTopology(net, params);

  FaultSchedule schedule;
  PathFault down;
  down.time = 10 * kMillisecond;
  down.path = 1;
  down.kind = LinkFault::Kind::kDown;
  PathFault up = down;
  up.time = 30 * kMillisecond;
  up.kind = LinkFault::Kind::kUp;
  schedule = {down, up};

  std::vector<std::string> observed;
  SchedulePathFaults(sim, topo, schedule, [&](const PathFault& fault) {
    observed.push_back(std::to_string(fault.path) + ":" +
                       ToString(fault.kind));
  });

  sim.Run(20 * kMillisecond);
  EXPECT_TRUE(topo.forward[1]->down());
  EXPECT_TRUE(topo.backward[1]->down());
  EXPECT_FALSE(topo.forward[0]->down());
  sim.Run(40 * kMillisecond);
  EXPECT_FALSE(topo.forward[1]->down());
  EXPECT_FALSE(topo.backward[1]->down());
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], "1:down");
  EXPECT_EQ(observed[1], "1:up");
}

TEST(Link, ZeroJitterPreservesOrder) {
  Simulator sim;
  Link link(sim, MakeLink(1000.0, 10 * kMillisecond), Rng(9));
  std::vector<int> arrival_order;
  int next_tag = 0;
  link.SetDeliveryHandler([&](Datagram&& d) {
    arrival_order.push_back(d.payload[0]);
  });
  for (int i = 0; i < 20; ++i) {
    link.Transmit({{}, {}, std::vector<std::uint8_t>{
                               static_cast<std::uint8_t>(next_tag++)}});
  }
  sim.Run();
  for (std::size_t i = 1; i < arrival_order.size(); ++i) {
    EXPECT_GT(arrival_order[i], arrival_order[i - 1]);
  }
}


// ---------------------------------------------------------------------------
// Model-based property test: the Simulator against a naive reference.

TEST(SimulatorProperty, MatchesNaiveReferenceUnderRandomOps) {
  // Random mix of schedule/cancel operations, executed on the real
  // Simulator and on a trivially correct reference (sorted vector with
  // stable FIFO ordering). Firing orders must be identical.
  Rng rng(20260705);
  for (int round = 0; round < 50; ++round) {
    Simulator sim;
    struct RefEvent {
      TimePoint when;
      std::uint64_t seq;
      int tag;
      bool cancelled = false;
    };
    std::vector<RefEvent> reference;
    std::vector<Simulator::EventId> ids;
    std::vector<int> fired_real;
    std::uint64_t seq = 0;

    const int ops = 40;
    for (int op = 0; op < ops; ++op) {
      if (!ids.empty() && rng.NextBool(0.25)) {
        // Cancel a random still-known event (possibly already cancelled —
        // must be harmless in both).
        const std::size_t pick = rng.NextBounded(ids.size());
        sim.Cancel(ids[pick]);
        reference[pick].cancelled = true;
      } else {
        const TimePoint when = static_cast<TimePoint>(rng.NextBounded(500));
        const int tag = static_cast<int>(ids.size());
        ids.push_back(sim.ScheduleAt(
            when, [tag, &fired_real] { fired_real.push_back(tag); }));
        reference.push_back({when, seq++, tag});
      }
    }
    sim.Run();

    std::vector<RefEvent> expected = reference;
    std::erase_if(expected, [](const RefEvent& e) { return e.cancelled; });
    std::stable_sort(expected.begin(), expected.end(),
                     [](const RefEvent& a, const RefEvent& b) {
                       if (a.when != b.when) return a.when < b.when;
                       return a.seq < b.seq;
                     });
    std::vector<int> fired_expected;
    for (const RefEvent& e : expected) fired_expected.push_back(e.tag);
    ASSERT_EQ(fired_real, fired_expected) << "round " << round;
  }
}

TEST(SimulatorProperty, CallbackSchedulingDuringRunIsSound) {
  // Events scheduled from within callbacks (including at the current
  // time) run, in order, and never in the past.
  Simulator sim;
  Rng rng(7);
  int executed = 0;
  TimePoint last = -1;
  std::function<void(int)> chain = [&](int depth) {
    ++executed;
    EXPECT_GE(sim.now(), last);
    last = sim.now();
    if (depth > 0) {
      const Duration d1 = static_cast<Duration>(rng.NextBounded(20));
      const Duration d2 = static_cast<Duration>(rng.NextBounded(20));
      sim.Schedule(d1, [&chain, depth] { chain(depth - 1); });
      sim.Schedule(d2, [&chain, depth] { chain(depth - 1); });
    }
  };
  sim.Schedule(0, [&chain] { chain(6); });
  sim.Run();
  EXPECT_EQ(executed, (1 << 7) - 1);  // full binary tree of depth 6
}

}  // namespace
}  // namespace mpq::sim
