// Negative proof that MPQ_PROF_SCOPE compiles to nothing when the
// profiler is compiled out. This translation unit forces the disabled
// configuration with MPQ_PROF_FORCE_OFF (equivalent to building the tree
// with -DMPQ_PROF=OFF) while linking the same prof library as everything
// else.
//
// The proof is the static_assert below: a constexpr function evaluated
// at compile time may not construct objects with non-constexpr
// constructors, take clocks, or touch thread-locals — so if
// MPQ_PROF_SCOPE left any runtime residue in this configuration, the
// assert would fail to compile. Behavior with the macro compiled out is
// therefore byte-identical to not writing it at all.
#define MPQ_PROF_FORCE_OFF 1

#include <gtest/gtest.h>

#include "obs/prof.h"

namespace mpq::obs::prof {
namespace {

static_assert(!kCompiledIn,
              "MPQ_PROF_FORCE_OFF must select the disabled configuration");

constexpr int BodyWithScope() {
  MPQ_PROF_SCOPE("crypto/seal");
  return 42;
}
static_assert(BodyWithScope() == 42,
              "MPQ_PROF_SCOPE must be constexpr-evaluable (zero residue) "
              "when compiled out");

TEST(ProfDisabled, MacroRecordsNothingEvenWhenEnabled) {
  // The library itself is still linked (and may be compiled with
  // MPQ_PROF), but every scope in THIS translation unit is compiled out:
  // enabling the runtime gate records nothing.
  SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    MPQ_PROF_SCOPE("never/recorded");
  }
  SetEnabled(false);
  EXPECT_TRUE(Snapshot().empty());
  EXPECT_TRUE(FoldedStacks().empty());
  Reset();
}

}  // namespace
}  // namespace mpq::obs::prof
