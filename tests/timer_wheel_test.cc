// Unit tests for the hierarchical timer wheel (sim/timer_wheel.h) and
// its integration with the Simulator's (when, id) total order: pop-order
// property test against a naive reference, cancel/re-arm surgery,
// cascade boundaries at every level edge, the >2^32 overflow list, and
// the explorer hooks (PendingEvents / FireEvent / DuplicateEvent) over
// wheel-resident timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "sim/timer_wheel.h"

namespace mpq::sim {
namespace {

// ---------------------------------------------------------------------------
// Wheel-level tests (no Simulator): drive TimerWheel directly.

TEST(TimerWheel, StartsEmpty) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.PeekEarliest(), nullptr);
}

TEST(TimerWheel, SingleEntryPopAdvancesHorizon) {
  TimerWheel wheel;
  TimerEntry entry;
  wheel.Arm(entry, 12345, 1);
  ASSERT_TRUE(entry.armed());
  TimerEntry* earliest = wheel.PeekEarliest();
  ASSERT_EQ(earliest, &entry);
  wheel.PopEarliest(*earliest);
  EXPECT_FALSE(entry.armed());
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.horizon(), 12345);
}

TEST(TimerWheel, PopOrderIsWhenThenId) {
  TimerWheel wheel;
  TimerEntry a, b, c, d;
  wheel.Arm(a, 500, 4);
  wheel.Arm(b, 500, 2);  // same deadline, lower id: fires first
  wheel.Arm(c, 100, 9);
  wheel.Arm(d, 700, 1);
  std::vector<const TimerEntry*> order;
  while (TimerEntry* e = wheel.PeekEarliest()) {
    order.push_back(e);
    wheel.PopEarliest(*e);
  }
  EXPECT_EQ(order, (std::vector<const TimerEntry*>{&c, &b, &a, &d}));
}

TEST(TimerWheel, CancelWhilePending) {
  TimerWheel wheel;
  TimerEntry a, b;
  wheel.Arm(a, 100, 1);
  wheel.Arm(b, 200, 2);
  wheel.Cancel(a);
  EXPECT_FALSE(a.armed());
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.PeekEarliest(), &b);
  wheel.Cancel(a);  // double-cancel is a no-op
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, ReArmEarlierAndLater) {
  TimerWheel wheel;
  TimerEntry a, b;
  wheel.Arm(a, 1000, 1);
  wheel.Arm(b, 500, 2);
  EXPECT_EQ(wheel.PeekEarliest(), &b);
  // Re-arm a earlier than b: takes over the front.
  wheel.Arm(a, 100, 3);
  EXPECT_EQ(wheel.size(), 2u);
  EXPECT_EQ(wheel.PeekEarliest(), &a);
  // Re-arm a later again: b is the front once more.
  wheel.Arm(a, 90000, 4);
  EXPECT_EQ(wheel.PeekEarliest(), &b);
  EXPECT_EQ(a.when(), 90000);
  EXPECT_EQ(a.id(), 4u);
}

TEST(TimerWheel, DestructorDisarmsEntry) {
  TimerWheel wheel;
  {
    TimerEntry scoped;
    wheel.Arm(scoped, 100, 1);
    EXPECT_EQ(wheel.size(), 1u);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.PeekEarliest(), nullptr);
}

TEST(TimerWheel, CascadeBoundaries) {
  // Deadlines straddling every level boundary: 2^8, 2^16, 2^24, and the
  // 2^32 overflow horizon. Popping must produce exact (when, id) order,
  // cascading coarse slots down as the horizon crosses them.
  const std::vector<TimePoint> deadlines = {
      0,       1,         254,       255,        256,        257,
      65535,   65536,     65537,     (1 << 24) - 1, 1 << 24, (1 << 24) + 1,
      1 << 30, (1LL << 32) - 1, 1LL << 32, (1LL << 32) + 5, 1LL << 40};
  std::vector<std::unique_ptr<TimerEntry>> entries;
  TimerWheel wheel;
  std::uint64_t id = 1;
  for (const TimePoint when : deadlines) {
    entries.push_back(std::make_unique<TimerEntry>());
    wheel.Arm(*entries.back(), when, id++);
  }
  std::vector<TimePoint> popped;
  while (TimerEntry* e = wheel.PeekEarliest()) {
    popped.push_back(e->when());
    wheel.PopEarliest(*e);
  }
  std::vector<TimePoint> expected = deadlines;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(popped, expected);
}

TEST(TimerWheel, PropertyPopOrderMatchesNaiveReference) {
  // Random interleaving of arm / re-arm / cancel / pop against a naive
  // "scan everything" reference. Any divergence in (when, id) order or
  // occupancy is a bug in placement, cascading, or the bitmaps.
  constexpr int kTimers = 64;
  constexpr int kOps = 4000;
  Rng rng(0xABCDEF);
  TimerWheel wheel;
  std::vector<std::unique_ptr<TimerEntry>> entries;
  for (int i = 0; i < kTimers; ++i) {
    entries.push_back(std::make_unique<TimerEntry>());
  }
  struct Ref {
    TimePoint when = 0;
    std::uint64_t id = 0;
    bool armed = false;
  };
  std::vector<Ref> ref(kTimers);
  std::uint64_t next_id = 1;
  TimePoint now = 0;

  auto ref_earliest = [&]() -> int {
    int best = -1;
    for (int i = 0; i < kTimers; ++i) {
      if (!ref[static_cast<std::size_t>(i)].armed) continue;
      const auto& r = ref[static_cast<std::size_t>(i)];
      if (best < 0) {
        best = i;
        continue;
      }
      const auto& b = ref[static_cast<std::size_t>(best)];
      if (r.when != b.when ? r.when < b.when : r.id < b.id) best = i;
    }
    return best;
  };

  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t pick = rng.NextU64() % 100;
    const auto i = static_cast<std::size_t>(rng.NextU64() % kTimers);
    if (pick < 55) {
      // Arm / re-arm at a horizon-respecting deadline whose magnitude
      // distribution stresses every level (including overflow).
      const int shift = static_cast<int>(rng.NextU64() % 36);
      const auto span =
          static_cast<TimePoint>(rng.NextU64() & ((1ULL << shift) | 0xFF));
      const TimePoint when = now + span;
      wheel.Arm(*entries[i], when, next_id);
      ref[i] = {when, next_id, true};
      ++next_id;
    } else if (pick < 75) {
      wheel.Cancel(*entries[i]);
      ref[i].armed = false;
    } else {
      TimerEntry* e = wheel.PeekEarliest();
      const int want = ref_earliest();
      if (want < 0) {
        EXPECT_EQ(e, nullptr);
        continue;
      }
      ASSERT_NE(e, nullptr);
      auto& r = ref[static_cast<std::size_t>(want)];
      EXPECT_EQ(e, entries[static_cast<std::size_t>(want)].get());
      EXPECT_EQ(e->when(), r.when);
      EXPECT_EQ(e->id(), r.id);
      now = e->when();
      wheel.PopEarliest(*e);
      r.armed = false;
    }
    ASSERT_EQ(wheel.size(), static_cast<std::size_t>(std::count_if(
                                ref.begin(), ref.end(),
                                [](const Ref& r) { return r.armed; })));
  }
  // Drain what's left and check the full order.
  std::vector<std::pair<TimePoint, std::uint64_t>> drained;
  while (TimerEntry* e = wheel.PeekEarliest()) {
    drained.push_back({e->when(), e->id()});
    wheel.PopEarliest(*e);
  }
  std::vector<std::pair<TimePoint, std::uint64_t>> expected;
  for (const Ref& r : ref) {
    if (r.armed) expected.push_back({r.when, r.id});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(drained, expected);
}

// ---------------------------------------------------------------------------
// Simulator integration: wheel timers merge with heap events by (when, id).

TEST(TimerWheelSim, TimerAndHeapEventsInterleaveById) {
  Simulator sim;
  std::vector<int> order;
  Timer t1(sim, [&] { order.push_back(1); });
  t1.SetAt(100);  // id 1
  sim.ScheduleAt(100, [&] { order.push_back(2); });  // id 2
  Timer t3(sim, [&] { order.push_back(3); });
  t3.SetAt(100);  // id 3
  sim.ScheduleAt(50, [&] { order.push_back(0); });  // id 4, earlier time
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerWheelSim, ReArmConsumesOneIdPerArm) {
  // A timer re-armed n times must consume exactly n ids — the same
  // budget as the old ScheduleAt-based implementation, which the
  // byte-identity of digests and qlogs depends on.
  Simulator sim;
  Timer timer(sim, [] {});
  timer.SetAt(10);
  timer.SetAt(20);
  timer.SetAt(30);                                  // ids 1, 2, 3
  const auto id = sim.ScheduleAt(40, [] {});        // must be id 4
  EXPECT_EQ(id, 4u);
  sim.Run();
}

TEST(TimerWheelSim, ReArmFromInsideCallback) {
  // Classic periodic timer: the callback re-arms its own Timer. The
  // Simulator disarms the entry before invoking, so this must not
  // corrupt the wheel.
  Simulator sim;
  int ticks = 0;
  Timer periodic(sim, [&] {
    ++ticks;
    if (ticks < 5) periodic.SetIn(1000);
  });
  periodic.SetIn(1000);
  sim.Run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 5000);
}

TEST(TimerWheelSim, CancelByEventIdReachesWheel) {
  Simulator sim;
  bool fired = false;
  Timer timer(sim, [&] { fired = true; });
  timer.SetAt(100);
  // The arm consumed id 1; Simulator::Cancel must find it on the wheel.
  sim.Cancel(1);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(timer.armed());
}

TEST(TimerWheelSim, PendingEventsListsWheelTimers) {
  Simulator sim;
  Timer timer(sim, [] {});
  timer.SetAt(500);                                    // id 1
  sim.ScheduleAt(300, [] {}, EventKind::kDelivery, 7); // id 2
  const auto pending = sim.PendingEvents();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].id, 2u);
  EXPECT_EQ(pending[0].when, 300);
  EXPECT_EQ(pending[0].kind, EventKind::kDelivery);
  EXPECT_EQ(pending[1].id, 1u);
  EXPECT_EQ(pending[1].when, 500);
  EXPECT_EQ(pending[1].kind, EventKind::kTimer);
}

TEST(TimerWheelSim, FireEventOutOfOrderFiresLate) {
  // Explorer semantics: firing the *later* timer first advances time to
  // its deadline; the earlier timer then fires "late" at that same time,
  // and the wheel must tolerate the inversion (no horizon violation).
  Simulator sim;
  std::vector<std::pair<int, TimePoint>> fired;
  Timer early(sim, [&] { fired.push_back({1, sim.now()}); });
  Timer late(sim, [&] { fired.push_back({2, sim.now()}); });
  early.SetAt(100);  // id 1
  late.SetAt(900);   // id 2
  ASSERT_TRUE(sim.FireEvent(2));
  ASSERT_TRUE(sim.FireEvent(1));
  EXPECT_EQ(fired, (std::vector<std::pair<int, TimePoint>>{{2, 900},
                                                           {1, 900}}));
  EXPECT_TRUE(sim.empty());
  // Unknown ids are rejected.
  EXPECT_FALSE(sim.FireEvent(99));
}

TEST(TimerWheelSim, DuplicateEventClonesWheelTimer) {
  Simulator sim;
  int fires = 0;
  Timer timer(sim, [&] { ++fires; });
  timer.SetAt(100);  // id 1
  const auto copy = sim.DuplicateEvent(1, 50);
  EXPECT_NE(copy, 0u);
  sim.Run();
  // Original at 100 and the clone at 150 both invoke the callback.
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.now(), 150);
}

TEST(TimerWheelSim, DeadlineSemanticsMatchOldTimer) {
  Simulator sim;
  Timer timer(sim, [] {});
  EXPECT_EQ(timer.deadline(), kTimeInfinite);
  timer.SetAt(250);
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.deadline(), 250);
  sim.Run();
  // After firing the timer reports disarmed/infinite, as before.
  EXPECT_FALSE(timer.armed());
  EXPECT_EQ(timer.deadline(), kTimeInfinite);
  timer.SetIn(100);
  timer.Cancel();
  EXPECT_EQ(timer.deadline(), kTimeInfinite);
  EXPECT_FALSE(timer.armed());
}

TEST(TimerWheelSim, ManyTimersAcrossCascades) {
  // End-to-end: hundreds of timers with deadlines spread over five
  // decades fire in exact deadline order under Run().
  Simulator sim;
  Rng rng(42);
  std::vector<std::unique_ptr<Timer>> timers;
  std::vector<TimePoint> fired;
  std::vector<TimePoint> expected;
  for (int i = 0; i < 400; ++i) {
    const auto when =
        static_cast<TimePoint>(rng.NextU64() % 100'000'000);  // up to 100 s
    expected.push_back(when);
    timers.push_back(std::make_unique<Timer>(
        sim, [&fired, &sim] { fired.push_back(sim.now()); }));
    timers.back()->SetAt(when);
  }
  sim.Run();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace mpq::sim
