// Crypto tests: ChaCha20 against the RFC 8439 vectors, SipHash-2-4 against
// the reference vectors, AEAD seal/open properties (tamper detection,
// path-id nonce separation), and key-schedule sanity.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/buf.h"
#include "common/rng.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/cpu.h"
#include "crypto/siphash.h"

namespace mpq::crypto {
namespace {

ChaChaKey SequentialKey() {
  ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2.
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                             0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::array<std::uint8_t, kChaChaBlockSize> block;
  ChaCha20Block(key, 1, nonce, block);
  const std::uint8_t expected[kChaChaBlockSize] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(std::memcmp(block.data(), expected, sizeof(expected)), 0)
      << "got " << mpq::ToHex(block);
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 §2.4.2.
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                             0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const char* text =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(text, text + std::strlen(text));
  ChaCha20Xor(key, 1, nonce, data);
  const char* expected_hex =
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d";
  EXPECT_EQ(mpq::ToHex(data), expected_hex);
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::vector<std::uint8_t> original = data;
  ChaCha20Xor(key, 1, nonce, data);
  EXPECT_NE(data, original);
  ChaCha20Xor(key, 1, nonce, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, NonMultipleOfBlockLengths) {
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce{};
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    std::vector<std::uint8_t> data(len, 0xAA);
    const auto original = data;
    ChaCha20Xor(key, 0, nonce, data);
    ChaCha20Xor(key, 0, nonce, data);
    EXPECT_EQ(data, original) << "len " << len;
  }
}

TEST(SipHash24, ReferenceVectors) {
  // Vectors from the SipHash reference implementation: key = 00..0f,
  // message = 00,01,...,len-1.
  SipHashKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  struct Case {
    std::size_t len;
    std::uint64_t expected;
  };
  const Case cases[] = {
      {0, 0x726fdb47dd0e0e31ULL}, {1, 0x74f839c593dc67fdULL},
      {2, 0x0d6c8009d9a94f5aULL}, {3, 0x85676696d7fb7e2dULL},
      {4, 0xcf2794e0277187b7ULL}, {8, 0x93f5f5799a932462ULL},
  };
  for (const auto& c : cases) {
    std::vector<std::uint8_t> msg(c.len);
    for (std::size_t i = 0; i < c.len; ++i) {
      msg[i] = static_cast<std::uint8_t>(i);
    }
    EXPECT_EQ(SipHash24(key, msg), c.expected) << "len " << c.len;
  }
}

TEST(SipHash24, KeySensitivity) {
  SipHashKey k1{}, k2{};
  k2[0] = 1;
  const std::uint8_t msg[] = {1, 2, 3};
  EXPECT_NE(SipHash24(k1, msg), SipHash24(k2, msg));
}

// ---------------------------------------------------------------------------
// Key schedule

TEST(Kdf32, LabelsSeparateOutputs) {
  const std::uint8_t secret[] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NE(Kdf32(secret, "a"), Kdf32(secret, "b"));
  EXPECT_EQ(Kdf32(secret, "a"), Kdf32(secret, "a"));
}

TEST(Kdf32, SecretsSeparateOutputs) {
  const std::uint8_t s1[] = {1, 2, 3};
  const std::uint8_t s2[] = {1, 2, 4};
  EXPECT_NE(Kdf32(s1, "x"), Kdf32(s2, "x"));
}

TEST(Kdf32, LongSecretTailMatters) {
  // Bytes past the first 16 (the SipHash key part) must still influence
  // the output via the message path.
  std::vector<std::uint8_t> s1(24, 7), s2(24, 7);
  s2[20] = 9;
  EXPECT_NE(Kdf32(s1, "x"), Kdf32(s2, "x"));
}

TEST(SessionKeys, DirectionsDifferAndDeriveDeterministically) {
  const std::uint8_t cn[] = {1, 1, 1, 1};
  const std::uint8_t sn[] = {2, 2, 2, 2};
  const std::uint8_t cfg[] = {3, 3, 3, 3};
  const SessionKeys a = DeriveSessionKeys(cn, sn, cfg);
  const SessionKeys b = DeriveSessionKeys(cn, sn, cfg);
  EXPECT_EQ(a.client_to_server, b.client_to_server);
  EXPECT_EQ(a.server_to_client, b.server_to_client);
  EXPECT_NE(a.client_to_server, a.server_to_client);
}

// ---------------------------------------------------------------------------
// AEAD packet protection

TEST(PacketProtection, SealOpenRoundTrip) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {9, 9, 9};
  std::vector<std::uint8_t> plain(500);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  const auto sealed = prot.Seal(PathId{1}, PacketNumber{42}, aad, plain);
  EXPECT_EQ(sealed.size(), plain.size() + kAeadTagSize);
  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{1}, PacketNumber{42}, aad, sealed, opened));
  EXPECT_EQ(opened, plain);
}

TEST(PacketProtection, TamperedCiphertextRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1};
  const std::uint8_t plain[] = {10, 20, 30, 40};
  auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  sealed[1] ^= 0x80;
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{7}, aad, sealed, opened));
}

TEST(PacketProtection, TamperedAadRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1, 2};
  const std::uint8_t bad_aad[] = {1, 3};
  const std::uint8_t plain[] = {10, 20, 30};
  const auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{7}, bad_aad, sealed, opened));
}

TEST(PacketProtection, WrongPacketNumberRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1};
  const std::uint8_t plain[] = {10};
  const auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{8}, aad, sealed, opened));
}

TEST(PacketProtection, PathIdSeparatesNonces) {
  // The paper's §3 security note: the same packet number on two paths
  // must not produce the same keystream. Seal the same plaintext with the
  // same PN on two paths and check the ciphertexts differ; opening with
  // the wrong path id must fail.
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {5};
  const std::uint8_t plain[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto sealed_p0 = prot.Seal(PathId{0}, PacketNumber{1}, aad, plain);
  const auto sealed_p1 = prot.Seal(PathId{1}, PacketNumber{1}, aad, plain);
  EXPECT_NE(sealed_p0, sealed_p1);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{1}, PacketNumber{1}, aad, sealed_p0, opened));
  EXPECT_TRUE(prot.Open(PathId{0}, PacketNumber{1}, aad, sealed_p0, opened));
}

TEST(PacketProtection, TruncatedInputRejected) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> opened;
  const std::uint8_t tiny[] = {1, 2, 3};  // shorter than the tag
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{1}, {}, tiny, opened));
}

TEST(PacketProtection, EmptyPlaintextWorks) {
  PacketProtection prot(SequentialKey());
  const auto sealed = prot.Seal(PathId{2}, PacketNumber{9}, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  std::vector<std::uint8_t> opened{1, 2, 3};
  ASSERT_TRUE(prot.Open(PathId{2}, PacketNumber{9}, {}, sealed, opened));
  EXPECT_TRUE(opened.empty());
}

class AeadLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadLengthSweep, RoundTripAtLength) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const std::uint8_t aad[] = {0xAB, 0xCD};
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);
  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{3}, PacketNumber{GetParam() + 1}, aad, sealed, opened));
  EXPECT_EQ(opened, plain);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AeadLengthSweep,
                         ::testing::Values(0, 1, 15, 16, 63, 64, 65, 500,
                                           1350));

// ---------------------------------------------------------------------------
// In-place AEAD (the zero-allocation datapath uses these entry points; the
// allocating Seal/Open must stay byte-compatible with them)

TEST_P(AeadLengthSweep, SealInPlaceMatchesSeal) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {0xAB, 0xCD};
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);

  std::vector<std::uint8_t> buf = plain;
  buf.resize(buf.size() + kAeadTagSize);  // tag slot
  prot.SealInPlace(PathId{3}, PacketNumber{GetParam() + 1}, aad, buf);
  EXPECT_EQ(buf, sealed);
}

TEST_P(AeadLengthSweep, OpenInPlaceMatchesOpen) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {0xAB, 0xCD};
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);

  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{3}, PacketNumber{GetParam() + 1}, aad, sealed, opened));

  std::vector<std::uint8_t> buf = sealed;
  std::size_t plaintext_len = 0;
  ASSERT_TRUE(prot.OpenInPlace(PathId{3}, PacketNumber{GetParam() + 1}, aad, buf, plaintext_len));
  ASSERT_EQ(plaintext_len, plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), buf.begin()));
  EXPECT_EQ(opened, plain);
}

TEST(PacketProtection, OpenInPlaceRejectsCorruptionUntouched) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1, 2, 3};
  std::vector<std::uint8_t> plain(100);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  const auto sealed = prot.Seal(PathId{1}, PacketNumber{77}, aad, plain);
  // Flip one bit at every position (ciphertext and tag alike): the open
  // must fail and — per the documented contract — leave the buffer as the
  // caller passed it, so a failed decrypt never leaks keystream.
  for (std::size_t pos = 0; pos < sealed.size(); ++pos) {
    std::vector<std::uint8_t> buf = sealed;
    buf[pos] ^= 0x40;
    const std::vector<std::uint8_t> tampered = buf;
    std::size_t plaintext_len = 0;
    EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{77}, aad, buf, plaintext_len))
        << "bit flip at " << pos;
    EXPECT_EQ(buf, tampered) << "buffer modified on failure at " << pos;
  }
  // Wrong AAD and wrong packet number fail the same way.
  std::vector<std::uint8_t> buf = sealed;
  std::size_t plaintext_len = 0;
  const std::uint8_t bad_aad[] = {1, 2, 4};
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{77}, bad_aad, buf, plaintext_len));
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{78}, aad, buf, plaintext_len));
  EXPECT_EQ(buf, sealed);
}

TEST(PacketProtection, InPlacePathIdSeparatesNonces) {
  // §3's nonce rule holds for the in-place entry points too: the same
  // packet number on two paths yields different ciphertext, and a packet
  // sealed on one path never opens on the other.
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {5};
  const std::vector<std::uint8_t> plain = {1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<std::uint8_t> buf_p0 = plain;
  buf_p0.resize(buf_p0.size() + kAeadTagSize);
  std::vector<std::uint8_t> buf_p1 = buf_p0;
  prot.SealInPlace(PathId{0}, PacketNumber{1}, aad, buf_p0);
  prot.SealInPlace(PathId{1}, PacketNumber{1}, aad, buf_p1);
  EXPECT_NE(buf_p0, buf_p1);

  std::size_t plaintext_len = 0;
  std::vector<std::uint8_t> cross = buf_p0;
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{1}, aad, cross, plaintext_len));
  ASSERT_TRUE(prot.OpenInPlace(PathId{0}, PacketNumber{1}, aad, buf_p0, plaintext_len));
  ASSERT_EQ(plaintext_len, plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), buf_p0.begin()));
}

TEST(PacketProtection, OpenInPlaceTruncatedInputRejected) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> tiny = {1, 2, 3};  // shorter than the tag
  std::size_t plaintext_len = 0;
  EXPECT_FALSE(prot.OpenInPlace(PathId{0}, PacketNumber{1}, {}, tiny, plaintext_len));
}

// --- SIMD dispatch ---------------------------------------------------------

/// Every level compiled into this binary and available on this machine,
/// scalar first. Tests iterate the list so the SSE2/AVX2 kernels face
/// the same known-answer vectors as the scalar reference.
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (MaxSimdLevel() >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (MaxSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// RAII: tests that force a level must not leak it into later tests.
struct SimdLevelRestorer {
  ~SimdLevelRestorer() { ForceSimdLevel(MaxSimdLevel()); }
};

TEST(SimdDispatch, Rfc8439EncryptionVectorAtEveryLevel) {
  // The §2.4.2 vector, re-checked with each kernel forced. The text is
  // 114 bytes — short of one SSE2 batch — so also run an extended
  // message (the vector text repeated 8x = 912 bytes) through every
  // level and require bytes identical to scalar: that covers the AVX2
  // 8-block path, the SSE2 4-block path, whole scalar blocks and the
  // partial tail in one sweep.
  SimdLevelRestorer restore;
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                             0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const char* text =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const std::vector<std::uint8_t> plain(text, text + std::strlen(text));
  const char* expected_hex =
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d";

  std::vector<std::uint8_t> extended;
  for (int i = 0; i < 8; ++i) {
    extended.insert(extended.end(), plain.begin(), plain.end());
  }
  ForceSimdLevel(SimdLevel::kScalar);
  std::vector<std::uint8_t> extended_scalar = extended;
  ChaCha20Xor(key, 1, nonce, extended_scalar);

  for (const SimdLevel level : AvailableLevels()) {
    ForceSimdLevel(level);
    ASSERT_EQ(ActiveSimdLevel(), level);
    std::vector<std::uint8_t> data = plain;
    ChaCha20Xor(key, 1, nonce, data);
    EXPECT_EQ(mpq::ToHex(data), expected_hex)
        << "level " << SimdLevelName(level);
    std::vector<std::uint8_t> big = extended;
    ChaCha20Xor(key, 1, nonce, big);
    EXPECT_EQ(big, extended_scalar) << "level " << SimdLevelName(level);
  }
}

TEST(SimdDispatch, SipHashVectorsAndSealAtEveryLevel) {
  // SipHash itself is scalar code, but the seal path fuses its absorb
  // into the vectorized cipher walk — so run the reference vectors AND
  // a full seal (tag included) at every level, requiring byte-equal
  // output across levels.
  SimdLevelRestorer restore;
  SipHashKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  const PacketProtection prot(SequentialKey());
  const std::vector<std::uint8_t> plain(1350, 0x5A);
  const std::uint8_t aad[14] = {1, 2, 3};

  ForceSimdLevel(SimdLevel::kScalar);
  const auto sealed_scalar =
      prot.Seal(PathId{300}, PacketNumber{77}, aad, plain);

  for (const SimdLevel level : AvailableLevels()) {
    ForceSimdLevel(level);
    std::vector<std::uint8_t> msg;
    const std::uint64_t expected[] = {
        0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
        0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL};
    for (std::size_t len = 0; len < 5; ++len) {
      EXPECT_EQ(SipHash24(key, msg), expected[len])
          << "len " << len << " level " << SimdLevelName(level);
      msg.push_back(static_cast<std::uint8_t>(len));
    }
    EXPECT_EQ(prot.Seal(PathId{300}, PacketNumber{77}, aad, plain),
              sealed_scalar)
        << "level " << SimdLevelName(level);
  }
}

TEST(SimdDispatch, RandomizedScalarEquivalence) {
  // Property test: for random keys/nonces/counters and lengths chosen
  // to straddle every kernel boundary (odd lengths, partial blocks,
  // 4/8-block multiples ± 1), every compiled SIMD level produces the
  // scalar bytes exactly.
  SimdLevelRestorer restore;
  mpq::Rng rng(20170712);
  const std::size_t kBoundary[] = {1,   63,  64,  65,  255,  256,  257,
                                   511, 512, 513, 767, 1023, 1024, 1025};
  for (int iter = 0; iter < 120; ++iter) {
    ChaChaKey key;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.NextU64());
    ChaChaNonce nonce;
    for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto counter = static_cast<std::uint32_t>(rng.NextU64());
    const std::size_t len =
        iter < 14 ? kBoundary[iter] : (rng.NextU64() % 2100);
    std::vector<std::uint8_t> input(len);
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.NextU64());

    ForceSimdLevel(SimdLevel::kScalar);
    std::vector<std::uint8_t> reference = input;
    ChaCha20Xor(key, counter, nonce, reference);

    for (const SimdLevel level : AvailableLevels()) {
      if (level == SimdLevel::kScalar) continue;
      ForceSimdLevel(level);
      std::vector<std::uint8_t> data = input;
      ChaCha20Xor(key, counter, nonce, data);
      ASSERT_EQ(data, reference)
          << "iter " << iter << " len " << len << " level "
          << SimdLevelName(level);
    }
  }
}

TEST(SimdDispatch, ForceIsClampedToMachineMaximum) {
  SimdLevelRestorer restore;
  ForceSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(ActiveSimdLevel(), MaxSimdLevel());
}

// --- PR 10 regression tests ------------------------------------------------

TEST(Kdf32, EmptySecretIsDeterministicAndSafe) {
  // Regression: Kdf32 used to memcpy from secret.data() without a size
  // check — with an empty span that is memcpy(dst, nullptr, 0), which
  // is undefined behavior (UBSan flags it). An empty secret must derive
  // deterministically and differ by label like any other.
  const std::span<const std::uint8_t> empty;
  const auto a = Kdf32(empty, "label-a");
  const auto b = Kdf32(empty, "label-a");
  const auto c = Kdf32(empty, "label-b");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PacketProtection, WidePathIdsDoNotCollideInTheNonce) {
  // Regression: the nonce used to carry only the low byte of the path
  // id, so paths 1 and 257 (1 + 256) sealed under identical nonces —
  // exactly the cross-path nonce reuse the §3 construction exists to
  // prevent. All four path-id bytes now enter the nonce.
  PacketProtection prot(SequentialKey());
  const std::vector<std::uint8_t> plain(64, 0x33);
  const std::uint8_t aad[4] = {7, 7, 7, 7};
  const auto low = prot.Seal(PathId{1}, PacketNumber{5}, aad, plain);
  const auto high = prot.Seal(PathId{257}, PacketNumber{5}, aad, plain);
  EXPECT_NE(low, high);
  // Cross-open must fail: the tag binds the full path id.
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(prot.Open(PathId{257}, PacketNumber{5}, aad, low, out));
  EXPECT_FALSE(prot.Open(PathId{1}, PacketNumber{5}, aad, high, out));
  ASSERT_TRUE(prot.Open(PathId{257}, PacketNumber{5}, aad, high, out));
  EXPECT_EQ(out, plain);
}

TEST(PacketProtection, LowPathIdSealedBytesArePinned) {
  // Golden test: paths below 256 must keep their pre-widening wire bytes
  // (the high three path-id bytes land in what used to be reserved-zero
  // nonce bytes), so the figure benches stay byte-identical to the seed.
  // If this hex ever changes, the nonce layout changed — that is a wire
  // break, not a test to update casually.
  PacketProtection prot(SequentialKey());
  const std::vector<std::uint8_t> plain(32, 0x44);
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{9}, {}, plain);
  EXPECT_EQ(mpq::ToHex(sealed),
            "233da7aea3de98ce789f5214d5ce975078bcfe1daaf4cd29"
            "e77f23270ae8830e4256b6760d0e4bd2");
}

TEST(SessionKeys, InputFramingSeparatesShiftedSplits) {
  // Regression: the master-secret KDF used to hash the raw
  // concatenation client_nonce | server_nonce | config, so moving a
  // byte across a field boundary produced the same keys. Each field is
  // now length-prefixed.
  // Same concatenated bytes "ABC", three different field splits — each
  // must produce distinct keys.
  const std::vector<std::uint8_t> bytes = {'A', 'B', 'C'};
  const std::span<const std::uint8_t> all(bytes);
  const SessionKeys ab_c =
      DeriveSessionKeys(all.subspan(0, 2), all.subspan(2, 1), {});
  const SessionKeys a_bc =
      DeriveSessionKeys(all.subspan(0, 1), all.subspan(1, 2), {});
  const SessionKeys abc_none =
      DeriveSessionKeys(all.subspan(0, 3), all.subspan(3, 0), {});
  EXPECT_NE(ab_c.client_to_server, a_bc.client_to_server);
  EXPECT_NE(ab_c.server_to_client, a_bc.server_to_client);
  EXPECT_NE(ab_c.client_to_server, abc_none.client_to_server);
  EXPECT_NE(a_bc.client_to_server, abc_none.client_to_server);
  // Moving a byte between nonce and config must also separate.
  const SessionKeys config_split =
      DeriveSessionKeys(all.subspan(0, 2), {}, all.subspan(2, 1));
  EXPECT_NE(ab_c.client_to_server, config_split.client_to_server);
}

// --- batched seal/open -----------------------------------------------------

TEST(PacketProtection, SealNMatchesSealInPlacePerPacket) {
  PacketProtection prot(SequentialKey());
  const std::size_t lens[] = {0, 1, 64, 500, 1300};
  std::vector<std::vector<std::uint8_t>> batch_bufs;
  std::vector<std::vector<std::uint8_t>> single_bufs;
  std::vector<std::uint8_t> aads[5];
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> buf(lens[i] + kAeadTagSize);
    for (std::size_t j = 0; j < lens[i]; ++j) {
      buf[j] = static_cast<std::uint8_t>(i * 17 + j);
    }
    aads[i].assign(i + 1, static_cast<std::uint8_t>(0xA0 + i));
    batch_bufs.push_back(buf);
    single_bufs.push_back(buf);
  }
  std::vector<SealRequest> requests;
  for (std::size_t i = 0; i < 5; ++i) {
    requests.push_back(SealRequest{PathId{static_cast<std::uint32_t>(i * 90)},
                                   PacketNumber{i + 1}, aads[i],
                                   batch_bufs[i]});
  }
  prot.SealN(requests);
  for (std::size_t i = 0; i < 5; ++i) {
    prot.SealInPlace(PathId{static_cast<std::uint32_t>(i * 90)},
                     PacketNumber{i + 1}, aads[i], single_bufs[i]);
    EXPECT_EQ(batch_bufs[i], single_bufs[i]) << "packet " << i;
  }
}

TEST(PacketProtection, OpenNMatchesOpenInPlaceAndFlagsTampering) {
  PacketProtection prot(SequentialKey());
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<std::uint8_t> aad = {0xEE, 0xFF};
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<std::uint8_t> buf(100 + i * 37 + kAeadTagSize,
                                  static_cast<std::uint8_t>(i));
    prot.SealInPlace(PathId{2}, PacketNumber{i + 1}, aad, buf);
    bufs.push_back(std::move(buf));
  }
  // Corrupt packets 1 and 4.
  bufs[1][5] ^= 0x80;
  bufs[4].back() ^= 0x01;
  std::vector<std::vector<std::uint8_t>> expected = bufs;

  std::vector<OpenRequest> requests;
  for (std::size_t i = 0; i < 6; ++i) {
    requests.push_back(
        OpenRequest{PathId{2}, PacketNumber{i + 1}, aad, bufs[i]});
  }
  prot.OpenN(requests);
  for (std::size_t i = 0; i < 6; ++i) {
    std::size_t plaintext_len = 0;
    const bool ok = prot.OpenInPlace(PathId{2}, PacketNumber{i + 1}, aad,
                                     expected[i], plaintext_len);
    ASSERT_EQ(requests[i].ok, ok) << "packet " << i;
    ASSERT_EQ(ok, i != 1 && i != 4) << "packet " << i;
    EXPECT_EQ(bufs[i], expected[i]) << "packet " << i;
    if (ok) {
      EXPECT_EQ(requests[i].plaintext_len, plaintext_len);
      EXPECT_EQ(requests[i].plaintext_len, bufs[i].size() - kAeadTagSize);
    }
  }
}

}  // namespace
}  // namespace mpq::crypto
