// Crypto tests: ChaCha20 against the RFC 8439 vectors, SipHash-2-4 against
// the reference vectors, AEAD seal/open properties (tamper detection,
// path-id nonce separation), and key-schedule sanity.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/buf.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/siphash.h"

namespace mpq::crypto {
namespace {

ChaChaKey SequentialKey() {
  ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2.
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                             0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::array<std::uint8_t, kChaChaBlockSize> block;
  ChaCha20Block(key, 1, nonce, block);
  const std::uint8_t expected[kChaChaBlockSize] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(std::memcmp(block.data(), expected, sizeof(expected)), 0)
      << "got " << mpq::ToHex(block);
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 §2.4.2.
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                             0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const char* text =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(text, text + std::strlen(text));
  ChaCha20Xor(key, 1, nonce, data);
  const char* expected_hex =
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d";
  EXPECT_EQ(mpq::ToHex(data), expected_hex);
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::vector<std::uint8_t> original = data;
  ChaCha20Xor(key, 1, nonce, data);
  EXPECT_NE(data, original);
  ChaCha20Xor(key, 1, nonce, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, NonMultipleOfBlockLengths) {
  const ChaChaKey key = SequentialKey();
  const ChaChaNonce nonce{};
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    std::vector<std::uint8_t> data(len, 0xAA);
    const auto original = data;
    ChaCha20Xor(key, 0, nonce, data);
    ChaCha20Xor(key, 0, nonce, data);
    EXPECT_EQ(data, original) << "len " << len;
  }
}

TEST(SipHash24, ReferenceVectors) {
  // Vectors from the SipHash reference implementation: key = 00..0f,
  // message = 00,01,...,len-1.
  SipHashKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  struct Case {
    std::size_t len;
    std::uint64_t expected;
  };
  const Case cases[] = {
      {0, 0x726fdb47dd0e0e31ULL}, {1, 0x74f839c593dc67fdULL},
      {2, 0x0d6c8009d9a94f5aULL}, {3, 0x85676696d7fb7e2dULL},
      {4, 0xcf2794e0277187b7ULL}, {8, 0x93f5f5799a932462ULL},
  };
  for (const auto& c : cases) {
    std::vector<std::uint8_t> msg(c.len);
    for (std::size_t i = 0; i < c.len; ++i) {
      msg[i] = static_cast<std::uint8_t>(i);
    }
    EXPECT_EQ(SipHash24(key, msg), c.expected) << "len " << c.len;
  }
}

TEST(SipHash24, KeySensitivity) {
  SipHashKey k1{}, k2{};
  k2[0] = 1;
  const std::uint8_t msg[] = {1, 2, 3};
  EXPECT_NE(SipHash24(k1, msg), SipHash24(k2, msg));
}

// ---------------------------------------------------------------------------
// Key schedule

TEST(Kdf32, LabelsSeparateOutputs) {
  const std::uint8_t secret[] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NE(Kdf32(secret, "a"), Kdf32(secret, "b"));
  EXPECT_EQ(Kdf32(secret, "a"), Kdf32(secret, "a"));
}

TEST(Kdf32, SecretsSeparateOutputs) {
  const std::uint8_t s1[] = {1, 2, 3};
  const std::uint8_t s2[] = {1, 2, 4};
  EXPECT_NE(Kdf32(s1, "x"), Kdf32(s2, "x"));
}

TEST(Kdf32, LongSecretTailMatters) {
  // Bytes past the first 16 (the SipHash key part) must still influence
  // the output via the message path.
  std::vector<std::uint8_t> s1(24, 7), s2(24, 7);
  s2[20] = 9;
  EXPECT_NE(Kdf32(s1, "x"), Kdf32(s2, "x"));
}

TEST(SessionKeys, DirectionsDifferAndDeriveDeterministically) {
  const std::uint8_t cn[] = {1, 1, 1, 1};
  const std::uint8_t sn[] = {2, 2, 2, 2};
  const std::uint8_t cfg[] = {3, 3, 3, 3};
  const SessionKeys a = DeriveSessionKeys(cn, sn, cfg);
  const SessionKeys b = DeriveSessionKeys(cn, sn, cfg);
  EXPECT_EQ(a.client_to_server, b.client_to_server);
  EXPECT_EQ(a.server_to_client, b.server_to_client);
  EXPECT_NE(a.client_to_server, a.server_to_client);
}

// ---------------------------------------------------------------------------
// AEAD packet protection

TEST(PacketProtection, SealOpenRoundTrip) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {9, 9, 9};
  std::vector<std::uint8_t> plain(500);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  const auto sealed = prot.Seal(PathId{1}, PacketNumber{42}, aad, plain);
  EXPECT_EQ(sealed.size(), plain.size() + kAeadTagSize);
  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{1}, PacketNumber{42}, aad, sealed, opened));
  EXPECT_EQ(opened, plain);
}

TEST(PacketProtection, TamperedCiphertextRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1};
  const std::uint8_t plain[] = {10, 20, 30, 40};
  auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  sealed[1] ^= 0x80;
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{7}, aad, sealed, opened));
}

TEST(PacketProtection, TamperedAadRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1, 2};
  const std::uint8_t bad_aad[] = {1, 3};
  const std::uint8_t plain[] = {10, 20, 30};
  const auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{7}, bad_aad, sealed, opened));
}

TEST(PacketProtection, WrongPacketNumberRejected) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1};
  const std::uint8_t plain[] = {10};
  const auto sealed = prot.Seal(PathId{0}, PacketNumber{7}, aad, plain);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{8}, aad, sealed, opened));
}

TEST(PacketProtection, PathIdSeparatesNonces) {
  // The paper's §3 security note: the same packet number on two paths
  // must not produce the same keystream. Seal the same plaintext with the
  // same PN on two paths and check the ciphertexts differ; opening with
  // the wrong path id must fail.
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {5};
  const std::uint8_t plain[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto sealed_p0 = prot.Seal(PathId{0}, PacketNumber{1}, aad, plain);
  const auto sealed_p1 = prot.Seal(PathId{1}, PacketNumber{1}, aad, plain);
  EXPECT_NE(sealed_p0, sealed_p1);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(prot.Open(PathId{1}, PacketNumber{1}, aad, sealed_p0, opened));
  EXPECT_TRUE(prot.Open(PathId{0}, PacketNumber{1}, aad, sealed_p0, opened));
}

TEST(PacketProtection, TruncatedInputRejected) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> opened;
  const std::uint8_t tiny[] = {1, 2, 3};  // shorter than the tag
  EXPECT_FALSE(prot.Open(PathId{0}, PacketNumber{1}, {}, tiny, opened));
}

TEST(PacketProtection, EmptyPlaintextWorks) {
  PacketProtection prot(SequentialKey());
  const auto sealed = prot.Seal(PathId{2}, PacketNumber{9}, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  std::vector<std::uint8_t> opened{1, 2, 3};
  ASSERT_TRUE(prot.Open(PathId{2}, PacketNumber{9}, {}, sealed, opened));
  EXPECT_TRUE(opened.empty());
}

class AeadLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadLengthSweep, RoundTripAtLength) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const std::uint8_t aad[] = {0xAB, 0xCD};
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);
  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{3}, PacketNumber{GetParam() + 1}, aad, sealed, opened));
  EXPECT_EQ(opened, plain);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AeadLengthSweep,
                         ::testing::Values(0, 1, 15, 16, 63, 64, 65, 500,
                                           1350));

// ---------------------------------------------------------------------------
// In-place AEAD (the zero-allocation datapath uses these entry points; the
// allocating Seal/Open must stay byte-compatible with them)

TEST_P(AeadLengthSweep, SealInPlaceMatchesSeal) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {0xAB, 0xCD};
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);

  std::vector<std::uint8_t> buf = plain;
  buf.resize(buf.size() + kAeadTagSize);  // tag slot
  prot.SealInPlace(PathId{3}, PacketNumber{GetParam() + 1}, aad, buf);
  EXPECT_EQ(buf, sealed);
}

TEST_P(AeadLengthSweep, OpenInPlaceMatchesOpen) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {0xAB, 0xCD};
  std::vector<std::uint8_t> plain(GetParam());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i * 13);
  }
  const auto sealed = prot.Seal(PathId{3}, PacketNumber{GetParam() + 1}, aad, plain);

  std::vector<std::uint8_t> opened;
  ASSERT_TRUE(prot.Open(PathId{3}, PacketNumber{GetParam() + 1}, aad, sealed, opened));

  std::vector<std::uint8_t> buf = sealed;
  std::size_t plaintext_len = 0;
  ASSERT_TRUE(prot.OpenInPlace(PathId{3}, PacketNumber{GetParam() + 1}, aad, buf, plaintext_len));
  ASSERT_EQ(plaintext_len, plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), buf.begin()));
  EXPECT_EQ(opened, plain);
}

TEST(PacketProtection, OpenInPlaceRejectsCorruptionUntouched) {
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {1, 2, 3};
  std::vector<std::uint8_t> plain(100);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(i);
  }
  const auto sealed = prot.Seal(PathId{1}, PacketNumber{77}, aad, plain);
  // Flip one bit at every position (ciphertext and tag alike): the open
  // must fail and — per the documented contract — leave the buffer as the
  // caller passed it, so a failed decrypt never leaks keystream.
  for (std::size_t pos = 0; pos < sealed.size(); ++pos) {
    std::vector<std::uint8_t> buf = sealed;
    buf[pos] ^= 0x40;
    const std::vector<std::uint8_t> tampered = buf;
    std::size_t plaintext_len = 0;
    EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{77}, aad, buf, plaintext_len))
        << "bit flip at " << pos;
    EXPECT_EQ(buf, tampered) << "buffer modified on failure at " << pos;
  }
  // Wrong AAD and wrong packet number fail the same way.
  std::vector<std::uint8_t> buf = sealed;
  std::size_t plaintext_len = 0;
  const std::uint8_t bad_aad[] = {1, 2, 4};
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{77}, bad_aad, buf, plaintext_len));
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{78}, aad, buf, plaintext_len));
  EXPECT_EQ(buf, sealed);
}

TEST(PacketProtection, InPlacePathIdSeparatesNonces) {
  // §3's nonce rule holds for the in-place entry points too: the same
  // packet number on two paths yields different ciphertext, and a packet
  // sealed on one path never opens on the other.
  PacketProtection prot(SequentialKey());
  const std::uint8_t aad[] = {5};
  const std::vector<std::uint8_t> plain = {1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<std::uint8_t> buf_p0 = plain;
  buf_p0.resize(buf_p0.size() + kAeadTagSize);
  std::vector<std::uint8_t> buf_p1 = buf_p0;
  prot.SealInPlace(PathId{0}, PacketNumber{1}, aad, buf_p0);
  prot.SealInPlace(PathId{1}, PacketNumber{1}, aad, buf_p1);
  EXPECT_NE(buf_p0, buf_p1);

  std::size_t plaintext_len = 0;
  std::vector<std::uint8_t> cross = buf_p0;
  EXPECT_FALSE(prot.OpenInPlace(PathId{1}, PacketNumber{1}, aad, cross, plaintext_len));
  ASSERT_TRUE(prot.OpenInPlace(PathId{0}, PacketNumber{1}, aad, buf_p0, plaintext_len));
  ASSERT_EQ(plaintext_len, plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), buf_p0.begin()));
}

TEST(PacketProtection, OpenInPlaceTruncatedInputRejected) {
  PacketProtection prot(SequentialKey());
  std::vector<std::uint8_t> tiny = {1, 2, 3};  // shorter than the tag
  std::size_t plaintext_len = 0;
  EXPECT_FALSE(prot.OpenInPlace(PathId{0}, PacketNumber{1}, {}, tiny, plaintext_len));
}

}  // namespace
}  // namespace mpq::crypto
