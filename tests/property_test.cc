// Cross-cutting property sweeps (parameterised gtest): for every protocol
// and a grid of transfer sizes, loss rates and path asymmetries, a
// transfer must complete, deliver exactly the requested bytes, and pass
// the payload-pattern integrity check. These are the repository's
// "nothing is silently corrupted anywhere in the design space" net.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/runner.h"
#include "quic/endpoint.h"

namespace mpq::harness {
namespace {

std::array<sim::PathParams, 2> Paths(double cap0, double cap1, double rtt0_ms,
                                     double rtt1_ms, double queue_ms,
                                     double loss) {
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = cap0;
  paths[1].capacity_mbps = cap1;
  paths[0].rtt = MillisToDuration(rtt0_ms);
  paths[1].rtt = MillisToDuration(rtt1_ms);
  for (auto& p : paths) {
    p.max_queue_delay = MillisToDuration(queue_ms);
    p.random_loss_rate = loss;
  }
  return paths;
}

// ---------------------------------------------------------------------------
// Size sweep: every protocol moves every size intact.

using SizeCase = std::tuple<Protocol, ByteCount>;

class SizeSweep : public ::testing::TestWithParam<SizeCase> {};

TEST_P(SizeSweep, CompletesIntact) {
  const auto [protocol, size] = GetParam();
  TransferOptions options;
  options.transfer_size = size;
  options.seed = 21 + size.value() % 1009;
  const TransferResult result =
      RunTransfer(protocol, Paths(10, 4, 30, 80, 60, 0), options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.bytes_received, size);
  EXPECT_EQ(result.data_integrity_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SizeSweep,
    ::testing::Combine(::testing::Values(Protocol::kTcp, Protocol::kQuic,
                                         Protocol::kMptcp, Protocol::kMpquic),
                       ::testing::Values(ByteCount{1}, ByteCount{999},
                                         ByteCount{64} * 1024,
                                         ByteCount{1} * 1024 * 1024)),
    [](const auto& info) {
      return ToString(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param).value()) + "B";
    });

// ---------------------------------------------------------------------------
// Loss sweep: integrity under random loss on both paths, all protocols.

using LossCase = std::tuple<Protocol, int>;  // loss in tenths of a percent

class LossSweep : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossSweep, CompletesIntact) {
  const auto [protocol, loss_tenths] = GetParam();
  TransferOptions options;
  options.transfer_size = ByteCount{256 * 1024};
  options.seed = 31 + loss_tenths;
  const TransferResult result = RunTransfer(
      protocol, Paths(8, 3, 20, 100, 60, loss_tenths / 1000.0), options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.bytes_received, 256u * 1024);
  EXPECT_EQ(result.data_integrity_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossSweep,
    ::testing::Combine(::testing::Values(Protocol::kTcp, Protocol::kQuic,
                                         Protocol::kMptcp, Protocol::kMpquic),
                       ::testing::Values(0, 5, 25)),
    [](const auto& info) {
      return ToString(std::get<0>(info.param)) + "_loss" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Asymmetry sweep: extreme path heterogeneity must not corrupt or stall
// the multipath protocols.

struct AsymmetryCase {
  const char* name;
  double cap0, cap1;
  double rtt0_ms, rtt1_ms;
  double queue_ms;
};

class AsymmetrySweep : public ::testing::TestWithParam<AsymmetryCase> {};

TEST_P(AsymmetrySweep, MultipathProtocolsSurvive) {
  const AsymmetryCase& c = GetParam();
  for (Protocol protocol : {Protocol::kMptcp, Protocol::kMpquic}) {
    TransferOptions options;
    options.transfer_size = ByteCount{512 * 1024};
    options.seed = 41;
    options.time_limit = 1200 * kSecond;
    const TransferResult result = RunTransfer(
        protocol, Paths(c.cap0, c.cap1, c.rtt0_ms, c.rtt1_ms, c.queue_ms, 0),
        options);
    ASSERT_TRUE(result.completed) << c.name << " " << ToString(protocol);
    EXPECT_EQ(result.data_integrity_errors, 0u)
        << c.name << " " << ToString(protocol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AsymmetrySweep,
    ::testing::Values(
        AsymmetryCase{"capacity_100x", 50, 0.5, 30, 30, 60},
        AsymmetryCase{"rtt_100x", 10, 10, 4, 400, 60},
        AsymmetryCase{"both_asymmetric", 40, 0.4, 5, 350, 60},
        AsymmetryCase{"tiny_buffers", 10, 10, 30, 30, 1},
        AsymmetryCase{"deep_buffers", 5, 5, 30, 30, 1500}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Initial-path invariance: for multipath protocols, the initial path must
// not change total delivered bytes or corrupt data (only timing).

class InitialPathSweep : public ::testing::TestWithParam<Protocol> {};

TEST_P(InitialPathSweep, BothOrientationsComplete) {
  for (int initial = 0; initial < 2; ++initial) {
    TransferOptions options;
    options.transfer_size = ByteCount{512 * 1024};
    options.initial_path = initial;
    options.seed = 51;
    const TransferResult result =
        RunTransfer(GetParam(), Paths(20, 2, 10, 150, 60, 0), options);
    ASSERT_TRUE(result.completed) << "initial " << initial;
    EXPECT_EQ(result.bytes_received, 512u * 1024);
    EXPECT_EQ(result.data_integrity_errors, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, InitialPathSweep,
                         ::testing::Values(Protocol::kMptcp,
                                           Protocol::kMpquic),
                         [](const auto& info) {
                           return ToString(info.param);
                         });


// ---------------------------------------------------------------------------
// Reordering sweep: heavy link jitter reorders packets in flight. Loss
// detectors (QUIC packet threshold, TCP dupacks) may fire spuriously —
// costing time, never correctness.

class ReorderSweep : public ::testing::TestWithParam<Protocol> {};

TEST_P(ReorderSweep, JitteredLinksNeverCorrupt) {
  std::array<sim::PathParams, 2> paths;
  for (auto& p : paths) {
    p.capacity_mbps = 10;
    p.rtt = 30 * kMillisecond;
    p.max_queue_delay = 60 * kMillisecond;
    p.jitter = 10 * kMillisecond;  // >> serialization gap: reorders
  }
  TransferOptions options;
  options.transfer_size = ByteCount{512 * 1024};
  options.seed = 61;
  const TransferResult result = RunTransfer(GetParam(), paths, options);
  ASSERT_TRUE(result.completed) << ToString(GetParam());
  EXPECT_EQ(result.bytes_received, 512u * 1024);
  EXPECT_EQ(result.data_integrity_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ReorderSweep,
                         ::testing::Values(Protocol::kTcp, Protocol::kQuic,
                                           Protocol::kMptcp,
                                           Protocol::kMpquic),
                         [](const auto& info) {
                           return ToString(info.param);
                         });


// ---------------------------------------------------------------------------
// Hostile input: garbage datagrams injected at both endpoints during a
// transfer must be rejected (bad AEAD tag / malformed header) without
// crashing or corrupting the stream.

TEST(Robustness, GarbageDatagramFloodDuringQuicTransfer) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(77));
  std::array<sim::PathParams, 2> path_params;
  for (auto& p : path_params) {
    p.capacity_mbps = 10;
    p.rtt = 30 * kMillisecond;
    p.max_queue_delay = 60 * kMillisecond;
  }
  auto topo = sim::BuildTwoPathTopology(net, path_params);

  quic::ConnectionConfig config;
  config.multipath = true;
  config.congestion = cc::Algorithm::kOlia;
  quic::ServerEndpoint server(sim, net,
                              {topo.server_addr[0], topo.server_addr[1]},
                              config, 1);
  server.SetAcceptHandler([](quic::Connection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });
  quic::ClientEndpoint client(sim, net,
                              {topo.client_addr[0], topo.client_addr[1]},
                              config, 2);
  ByteCount received{};
  std::uint64_t errors = 0;
  bool finished = false;
  client.connection().SetStreamDataHandler(
      [&](StreamId id, ByteCount offset, std::span<const std::uint8_t> data,
          bool fin) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data[i] != PatternByte(id.value(), offset + i)) ++errors;
        }
        received += data.size();
        if (fin) finished = true;
      });
  client.connection().SetEstablishedHandler([&] {
    const std::string request = "GET 1048576";
    client.connection().SendOnStream(
        StreamId{3}, std::make_unique<BufferSource>(std::vector<std::uint8_t>(
               request.begin(), request.end())));
  });
  client.Connect(topo.server_addr[0]);

  // An on-path attacker blasting random bytes at both ends, every 5 ms.
  // (Injected straight into the delivery path, bypassing the links.)
  std::function<void()> inject;
  Rng attacker(666);
  const ConnectionId victim_cid = client.connection().cid();
  inject = [&sim, &net, &attacker, &inject, victim_cid, topo]() mutable {
    if (sim.now() > 10 * kSecond) return;
    std::vector<std::uint8_t> junk(attacker.NextBounded(600) + 20);
    for (auto& b : junk) b = static_cast<std::uint8_t>(attacker.NextU64());
    // Half the time, make it look like the victim connection (valid
    // header, garbage ciphertext) — the AEAD must reject it.
    if (attacker.NextBool(0.5)) {
      junk[0] = 0x02;  // multipath flag, 1-byte PN
      for (int i = 0; i < 8; ++i) {
        junk[1 + i] = static_cast<std::uint8_t>(victim_cid >> (8 * (7 - i)));
      }
    }
    // Deliver as if it arrived on path 0 in each direction.
    sim::Datagram to_server{topo.client_addr[0], topo.server_addr[0], junk};
    sim::Datagram to_client{topo.server_addr[0], topo.client_addr[0], junk};
    net.FindLinkFrom(topo.client_addr[0])->Transmit(std::move(to_server));
    net.FindLinkFrom(topo.server_addr[0])->Transmit(std::move(to_client));
    sim.Schedule(5 * kMillisecond, inject);
  };
  sim.Schedule(10 * kMillisecond, inject);

  while (!finished && sim.RunOne(120 * kSecond)) {
  }
  ASSERT_TRUE(finished);
  EXPECT_EQ(received, 1024u * 1024);
  EXPECT_EQ(errors, 0u);
  // The junk with a valid-looking header reached the AEAD and died there.
  EXPECT_GT(client.connection().stats().packets_decrypt_failed, 0u);
}

}  // namespace
}  // namespace mpq::harness
