// Unit tests for the observability module: histogram bucketing, JSON
// writing/escaping/parsing round trips, metrics registry snapshots, the
// tracer mux fan-out and the metrics tracer bindings.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_tracer.h"
#include "obs/mux.h"
#include "obs/qlog.h"
#include "obs/trace_reader.h"
#include "quic/trace.h"

namespace mpq::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucketing

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<std::size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<std::size_t>(v)),
              static_cast<std::uint64_t>(v));
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  // For every probed value, the bucket's [lower, next-lower) range must
  // contain it, and indices must be monotone in the value.
  std::size_t previous = 0;
  for (std::int64_t v : {0LL, 1LL, 31LL, 32LL, 33LL, 47LL, 48LL, 63LL, 64LL,
                         100LL, 1000LL, 65535LL, 65536LL, 1LL << 30,
                         (1LL << 40) + 12345, (1LL << 62)}) {
    const std::size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBucketCount);
    EXPECT_GE(index, previous) << "v=" << v;
    previous = index;
    EXPECT_LE(Histogram::BucketLowerBound(index),
              static_cast<std::uint64_t>(v))
        << "v=" << v;
    if (index + 1 < Histogram::kBucketCount) {
      EXPECT_GT(Histogram::BucketLowerBound(index + 1),
                static_cast<std::uint64_t>(v))
          << "v=" << v;
    }
  }
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // Log-linear promise: above the exact region, bucket width / lower
  // bound <= 1/16, i.e. any value is known to ~6%.
  for (std::size_t index = 32; index + 1 < Histogram::kBucketCount; ++index) {
    const double low = static_cast<double>(Histogram::BucketLowerBound(index));
    const double high =
        static_cast<double>(Histogram::BucketLowerBound(index + 1));
    EXPECT_LE((high - low) / low, 1.0 / 16.0 + 1e-9) << "index=" << index;
  }
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, PercentilesApproximateUniformData) {
  Histogram h;
  for (int v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10000);
  EXPECT_NEAR(h.mean(), 5000.5, 0.1);
  EXPECT_NEAR(h.Percentile(50), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(h.Percentile(90), 9000.0, 9000.0 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 9900.0, 9900.0 * 0.07);
  // Extremes clamp to the exact recorded min/max.
  EXPECT_EQ(h.Percentile(0), 1.0);
  EXPECT_EQ(h.Percentile(100), 10000.0);
}

TEST(Histogram, P999TracksTheExtremeTail) {
  // 10000 samples at 100 plus 50 at 100000 (0.5% of the total): the
  // p99.9 rank (~10040 of 10050) lands in the tail, p99 (~9950) stays
  // in the body.
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Record(100);
  for (int i = 0; i < 50; ++i) h.Record(100000);
  EXPECT_NEAR(h.Percentile(99), 100.0, 100.0 * 0.07);
  EXPECT_NEAR(h.Percentile(99.9), 100000.0, 100000.0 * 0.07);
}

TEST(Histogram, WriteJsonIncludesP999) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  JsonWriter writer;
  h.WriteJson(writer);
  const auto parsed = JsonValue::Parse(writer.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* p999 = parsed->Find("p999");
  ASSERT_NE(p999, nullptr);
  EXPECT_GE(p999->AsDouble(), parsed->Find("p99")->AsDouble());
  EXPECT_EQ(parsed->Find("sum_saturated"), nullptr);  // only when flagged
}

TEST(Histogram, SumSurvivesValuesThatOverflowUint64) {
  // Three INT64_MAX samples sum past 2^64. With 128-bit accumulation the
  // mean is exact; without it the sum saturates and says so — either
  // way mean() must not wrap around.
  Histogram h;
  for (int i = 0; i < 3; ++i) h.Record(INT64_MAX);
  EXPECT_EQ(h.count(), 3u);
  if (h.sum_saturated()) {
    EXPECT_GT(h.mean(), 0.0);  // lower bound, not garbage
  } else {
    EXPECT_NEAR(h.mean(), static_cast<double>(INT64_MAX),
                static_cast<double>(INT64_MAX) * 1e-9);
  }
}

TEST(Histogram, MergeCombinesCountsExtremesAndSum) {
  Histogram a;
  Histogram b;
  for (int v = 1; v <= 100; ++v) a.Record(v);
  for (int v = 901; v <= 1000; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), (5050.0 + 95050.0) / 200.0, 0.1);
  EXPECT_NEAR(a.Percentile(50), 100.0, 100.0 * 0.07);

  // Merging an empty histogram is a no-op.
  a.Merge(Histogram{});
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1);
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

// ---------------------------------------------------------------------------
// JSON writing and escaping

TEST(Json, EscapingRoundTrips) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 null-ish\x01 "
      "utf8 \xC3\xA9\xE2\x82\xAC end";
  std::string encoded;
  AppendJsonString(encoded, nasty);
  // Encoded form is printable ASCII + the original UTF-8 bytes: no raw
  // control characters survive.
  for (char ch : encoded) {
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
  const auto parsed = JsonValue::Parse(encoded);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), nasty);
}

TEST(Json, UnicodeEscapeDecodes) {
  const auto parsed = JsonValue::Parse("\"a\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "aA\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, WriterProducesParseableNestedDocument) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("int").Int(-42);
  writer.Key("uint").UInt(18446744073709551615ULL);
  writer.Key("pi").Double(3.25);
  writer.Key("yes").Bool(true);
  writer.Key("nothing").Null();
  writer.Key("list").BeginArray();
  writer.Int(1).Int(2).BeginObject().Key("deep").String("value").EndObject();
  writer.EndArray();
  writer.EndObject();

  const auto parsed = JsonValue::Parse(writer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("int")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.25);
  EXPECT_TRUE(parsed->Find("yes")->AsBool());
  ASSERT_NE(parsed->Find("list"), nullptr);
  const auto& list = parsed->Find("list")->AsArray();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].AsInt(), 1);
  EXPECT_EQ(list[2].Find("deep")->AsString(), "value");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\escape\"").has_value());
  EXPECT_FALSE(JsonValue::Parse("1 trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,2").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
}

TEST(Json, ParseAcceptsSurroundingWhitespace) {
  const auto parsed = JsonValue::Parse("  {\"a\": [1, 2]}\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("a")->AsArray().size(), 2u);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, SnapshotIsDeterministicAndParseable) {
  MetricsRegistry registry;
  registry.GetCounter("zulu").Increment(3);
  registry.GetCounter("alpha").Increment();
  registry.GetGauge("cwnd").Set(-7);
  auto& h = registry.GetHistogram("rtt_us");
  h.Record(100);
  h.Record(200);

  const std::string snapshot = registry.SnapshotJson();
  EXPECT_EQ(snapshot, registry.SnapshotJson());  // stable
  // Sorted iteration: "alpha" serializes before "zulu".
  EXPECT_LT(snapshot.find("\"alpha\""), snapshot.find("\"zulu\""));

  const auto parsed = JsonValue::Parse(snapshot);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("counters")->Find("zulu")->AsInt(), 3);
  EXPECT_EQ(parsed->Find("counters")->Find("alpha")->AsInt(), 1);
  EXPECT_EQ(parsed->Find("gauges")->Find("cwnd")->AsInt(), -7);
  const JsonValue* rtt = parsed->Find("histograms")->Find("rtt_us");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->Find("count")->AsInt(), 2);
  EXPECT_EQ(rtt->Find("min")->AsInt(), 100);
  EXPECT_EQ(rtt->Find("max")->AsInt(), 200);
  EXPECT_DOUBLE_EQ(rtt->Find("mean")->AsDouble(), 150.0);
}

TEST(MetricsRegistry, MergeFromFoldsShardRegistries) {
  // The shard-reduction path (harness/workload.cc): counters add,
  // histograms bucket-merge, gauges take the merged-in value, and
  // metrics absent on one side survive.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("flows").Increment(3);
  b.GetCounter("flows").Increment(4);
  b.GetCounter("only_b").Increment(9);
  a.GetGauge("depth").Set(5);
  b.GetGauge("depth").Set(11);
  a.GetHistogram("fct").Record(100);
  b.GetHistogram("fct").Record(300);
  b.GetHistogram("fct").Record(200);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("flows").value(), 7u);
  EXPECT_EQ(a.GetCounter("only_b").value(), 9u);
  EXPECT_EQ(a.GetGauge("depth").value(), 11);  // last write wins
  EXPECT_EQ(a.GetHistogram("fct").count(), 3u);
  EXPECT_EQ(a.GetHistogram("fct").min(), 100);
  EXPECT_EQ(a.GetHistogram("fct").max(), 300);
  EXPECT_DOUBLE_EQ(a.GetHistogram("fct").mean(), 200.0);
  // b is untouched.
  EXPECT_EQ(b.GetCounter("flows").value(), 4u);
  EXPECT_EQ(b.GetHistogram("fct").count(), 2u);
}

TEST(MetricsRegistry, MergeOrderIsAssociativeForSnapshots) {
  // Folding shard registries 0..n-1 into an empty fleet registry in
  // shard order must give the same snapshot as any bracketing: counters
  // and histogram buckets are commutative monoids.
  MetricsRegistry s0, s1, s2;
  s0.GetCounter("c").Increment(1);
  s1.GetCounter("c").Increment(2);
  s2.GetCounter("c").Increment(4);
  s0.GetHistogram("h").Record(10);
  s1.GetHistogram("h").Record(20);
  s2.GetHistogram("h").Record(40);

  MetricsRegistry left;  // ((0 + 1) + 2)
  left.MergeFrom(s0);
  left.MergeFrom(s1);
  left.MergeFrom(s2);
  MetricsRegistry pair;  // (1 + 2) merged into 0
  MetricsRegistry rest;
  rest.MergeFrom(s1);
  rest.MergeFrom(s2);
  MetricsRegistry right;
  right.MergeFrom(s0);
  right.MergeFrom(rest);
  EXPECT_EQ(left.SnapshotJson(), right.SnapshotJson());
}

TEST(MetricsRegistry, ReferencesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("hot");
  for (int i = 0; i < 100; ++i) registry.GetCounter("filler" + std::to_string(i));
  c.Increment(5);
  EXPECT_EQ(registry.GetCounter("hot").value(), 5u);
}

// ---------------------------------------------------------------------------
// Tracer mux and metrics tracer

TEST(TracerMux, FansOutEveryEventToAllSinks) {
  quic::CountingTracer a;
  quic::CountingTracer b;
  TracerMux mux;
  mux.Add(&a);
  mux.Add(&b);
  mux.Add(nullptr);  // ignored
  EXPECT_EQ(mux.size(), 2u);

  const quic::Frame ping = quic::PingFrame{};
  mux.OnPacketSent(1, PathId{0}, PacketNumber{1}, ByteCount{100}, true);
  mux.OnPacketReceived(2, PathId{1}, PacketNumber{1}, ByteCount{50});
  mux.OnPacketLost(3, PathId{0}, PacketNumber{1});
  mux.OnFrameSent(4, PathId{0}, ping);
  mux.OnFrameReceived(5, PathId{0}, ping);
  mux.OnSchedulerDecision(6, PathId{1}, "lowest-rtt", 10);
  mux.OnPathSample(7, PathId{0}, ByteCount{1000}, ByteCount{500}, 20000);
  mux.OnRto(8, PathId{0}, 2);
  mux.OnFrameRetransmitQueued(9, PathId{0}, ping);
  mux.OnFlowControlBlocked(10, StreamId{0});
  mux.OnHandshakeEvent(11, "established");
  mux.OnPathStateChange(12, PathId{1}, "created");
  mux.OnPacketLifecycle(13, PathId{0}, PacketNumber{1}, "acked", 450);

  for (const quic::CountingTracer* t : {&a, &b}) {
    EXPECT_EQ(t->lifecycle_events, 1u);
    EXPECT_EQ(t->packets_sent, 1u);
    EXPECT_EQ(t->packets_received, 1u);
    EXPECT_EQ(t->packets_lost, 1u);
    EXPECT_EQ(t->frames_sent, 1u);
    EXPECT_EQ(t->frames_received, 1u);
    EXPECT_EQ(t->scheduler_decisions, 1u);
    EXPECT_EQ(t->path_samples, 1u);
    EXPECT_EQ(t->rto_events, 1u);
    EXPECT_EQ(t->frames_requeued, 1u);
    EXPECT_EQ(t->flow_blocked_events, 1u);
    EXPECT_EQ(t->handshake_events, 1u);
    ASSERT_EQ(t->state_changes.size(), 1u);
    EXPECT_EQ(t->state_changes[0], "1:created");
  }
}

TEST(TracerMux, DeliversToSinksInRegistrationOrder) {
  // Fan-out order is part of the contract: a MetricsTracer registered
  // before a QlogTracer sees every event first, so a qlog line never
  // describes state a metrics snapshot taken "after" it lacks.
  struct OrderTracer final : quic::ConnectionTracer {
    OrderTracer(std::vector<std::string>* log, std::string name)
        : log(log), name(std::move(name)) {}
    std::vector<std::string>* log;
    std::string name;
    void OnPacketLost(TimePoint, PathId, PacketNumber) override {
      log->push_back(name + ":lost");
    }
    void OnPacketLifecycle(TimePoint, PathId, PacketNumber, const char* stage,
                           Duration) override {
      log->push_back(name + ":" + stage);
    }
  };
  std::vector<std::string> log;
  OrderTracer first(&log, "first");
  OrderTracer second(&log, "second");
  TracerMux mux;
  mux.Add(&first);
  mux.Add(&second);

  mux.OnPacketLost(1, PathId{0}, PacketNumber{7});
  mux.OnPacketLifecycle(2, PathId{0}, PacketNumber{7}, "acked", 99);

  const std::vector<std::string> expected = {"first:lost", "second:lost",
                                             "first:acked", "second:acked"};
  EXPECT_EQ(log, expected);
}

TEST(MetricsTracer, BindsEventsToRegistryMetrics) {
  MetricsRegistry registry;
  MetricsTracer tracer(registry);

  tracer.OnPacketSent(1, PathId{0}, PacketNumber{1}, ByteCount{1350}, true);
  tracer.OnPacketSent(2, PathId{1}, PacketNumber{1}, ByteCount{1350}, true);
  tracer.OnPacketLost(3, PathId{1}, PacketNumber{1});
  tracer.OnSchedulerDecision(4, PathId{0}, "lowest-rtt", 250);
  tracer.OnPathSample(5, PathId{0}, ByteCount{40000}, ByteCount{20000}, 22000);
  tracer.OnFrameSent(6, PathId{0}, quic::Frame(quic::AckFrame{PathId{0}, 123, {{PacketNumber{1}, PacketNumber{1}}}}));
  tracer.OnRto(7, PathId{1}, 1);
  tracer.OnHandshakeEvent(8, "established");
  tracer.OnPacketLifecycle(9, PathId{0}, PacketNumber{1}, "acked", 420);
  tracer.OnPacketLifecycle(10, PathId{0}, PacketNumber{2}, "acked", 380);
  tracer.OnPacketLifecycle(11, PathId{1}, PacketNumber{1}, "lost", 9000);

  EXPECT_EQ(registry.GetCounter("packets_sent").value(), 2u);
  EXPECT_EQ(registry.GetCounter("packets_lost").value(), 1u);
  EXPECT_EQ(registry.GetCounter("path.0.packets_sent").value(), 1u);
  EXPECT_EQ(registry.GetCounter("path.1.packets_lost").value(), 1u);
  EXPECT_EQ(registry.GetCounter("path.0.bytes_sent").value(), 1350u);
  EXPECT_EQ(registry.GetCounter("path.0.scheduled").value(), 1u);
  EXPECT_EQ(registry.GetCounter("rtos").value(), 1u);
  EXPECT_EQ(registry.GetGauge("path.0.cwnd").value(), 40000);
  EXPECT_EQ(registry.GetGauge("handshake.established.time_us").value(), 8);
  EXPECT_EQ(registry.GetHistogram("srtt_us").count(), 1u);
  EXPECT_EQ(registry.GetHistogram("ack_delay_us").count(), 1u);
  EXPECT_EQ(registry.GetHistogram("scheduler_decision_ns").count(), 1u);
  EXPECT_EQ(registry.GetHistogram("path.0.lifecycle.acked_us").count(), 2u);
  EXPECT_EQ(registry.GetHistogram("path.0.lifecycle.acked_us").max(), 420);
  EXPECT_EQ(registry.GetHistogram("path.1.lifecycle.lost_us").count(), 1u);
}

// ---------------------------------------------------------------------------
// Qlog writer <-> trace reader round trip

TEST(QlogTracer, EventsRoundTripThroughReader) {
  std::stringstream stream;
  {
    QlogTracer tracer(stream, "round \"trip\"");
    tracer.OnPacketSent(100, PathId{0}, PacketNumber{1}, ByteCount{1350}, true);
    tracer.OnPacketSent(200, PathId{1}, PacketNumber{1}, ByteCount{1350}, true);
    tracer.OnPacketLost(300, PathId{1}, PacketNumber{1});
    tracer.OnSchedulerDecision(400, PathId{0}, "lowest-rtt", 77);
    tracer.OnPathSample(500, PathId{0}, ByteCount{32768}, ByteCount{1350}, 20000);
    EXPECT_EQ(tracer.events_written(), 5u);
  }
  auto summary = ReadTrace(stream);
  EXPECT_EQ(summary.title, "round \"trip\"");
  EXPECT_EQ(summary.events, 5u);
  EXPECT_EQ(summary.malformed, 0u);
  EXPECT_EQ(summary.first_time, 100);
  EXPECT_EQ(summary.last_time, 500);
  EXPECT_EQ(summary.paths[0].packets_sent, 1u);
  EXPECT_EQ(summary.paths[1].packets_sent, 1u);
  EXPECT_EQ(summary.paths[1].packets_lost, 1u);
  EXPECT_EQ(summary.scheduler_reasons["lowest-rtt"], 1u);
  ASSERT_EQ(summary.paths[0].cwnd_samples.size(), 1u);
  EXPECT_EQ(summary.paths[0].cwnd_samples[0], 32768.0);
}

TEST(QlogTracer, LifecycleEventsRoundTripThroughReader) {
  std::stringstream stream;
  {
    QlogTracer tracer(stream, "lifecycle");
    tracer.OnPacketLifecycle(100, PathId{0}, PacketNumber{1}, "acked", 450);
    tracer.OnPacketLifecycle(200, PathId{0}, PacketNumber{2}, "acked", 510);
    tracer.OnPacketLifecycle(300, PathId{1}, PacketNumber{1}, "lost", 12000);
    EXPECT_EQ(tracer.events_written(), 3u);
  }
  const auto summary = ReadTrace(stream);
  EXPECT_EQ(summary.events, 3u);
  EXPECT_EQ(summary.malformed, 0u);
  ASSERT_EQ(summary.paths.at(0).acked_latency_us.size(), 2u);
  EXPECT_EQ(summary.paths.at(0).acked_latency_us[0], 450.0);
  EXPECT_EQ(summary.paths.at(0).acked_latency_us[1], 510.0);
  ASSERT_EQ(summary.paths.at(1).lost_latency_us.size(), 1u);
  EXPECT_EQ(summary.paths.at(1).lost_latency_us[0], 12000.0);
  EXPECT_TRUE(summary.paths.at(0).lost_latency_us.empty());
}

TEST(QlogTracer, EveryLineIsValidJson) {
  std::stringstream stream;
  {
    QlogTracer tracer(stream, "json\ncheck");
    tracer.OnHandshakeEvent(1, "chlo-sent");
    tracer.OnFrameSent(
        2, PathId{0}, quic::Frame(quic::StreamFrame{StreamId{3}, ByteCount{0}, true, {0xff, 0x00}}));
    tracer.OnFrameSent(3, PathId{0},
                       quic::Frame(quic::ConnectionCloseFrame{7, "bye\"\n"}));
  }
  std::string line;
  std::size_t lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_TRUE(JsonValue::Parse(line).has_value()) << "line: " << line;
  }
  EXPECT_EQ(lines, 4u);  // preamble + 3 events
}

TEST(TraceReader, RejectsMalformedAndTruncatedLines) {
  std::stringstream stream;
  stream << "{\"qlog_format\":\"NDJSON\",\"title\":\"strict\"}\n"
         << "{\"name\":\"transport:packet_sent\",\"time\":5,"
            "\"data\":{\"path\":0,\"bytes\":100}}\n"
         << "not json at all\n"                              // parse failure
         << "{\"name\":\"transport:packet_sent\"}\n"        // missing time
         << "{\"time\":9}\n"                                // missing name
         << "{\"name\":42,\"time\":9}\n"                    // name not a string
         << "{\"name\":\"x\",\"time\":-3}\n"              // negative time
         << "{\"name\":\"x\",\"time\":1,\"data\":7}\n"    // data not an object
         << "{\"name\":\"x\",\"time\":1,"
            "\"data\":{\"path\":9999}}\n"                  // path out of range
         << "[1,2,3]\n"                                     // not an object
         << "{\"name\":\"transport:packet_sent\",\"time\":6";  // truncated
  const auto summary = ReadTrace(stream);
  EXPECT_EQ(summary.events, 1u);
  EXPECT_EQ(summary.malformed, 9u);
  EXPECT_EQ(summary.paths.at(0).packets_sent, 1u);
  EXPECT_EQ(summary.title, "strict");
}

TEST(TraceReader, TruncatedFinalEventDoesNotCount) {
  // A well-formed stream whose last line lost its newline (crashed
  // writer): the complete prefix still summarizes, the tail is flagged.
  std::stringstream stream;
  stream << "{\"name\":\"recovery:rto\",\"time\":1,"
            "\"data\":{\"path\":1}}\n"
         << "{\"name\":\"recovery:rto\",\"time\":2,"
            "\"data\":{\"path\":1}}";
  const auto summary = ReadTrace(stream);
  EXPECT_EQ(summary.events, 1u);
  EXPECT_EQ(summary.malformed, 1u);
  EXPECT_EQ(summary.paths.at(1).rtos, 1u);
  EXPECT_EQ(summary.last_time, 1);
}

}  // namespace
}  // namespace mpq::obs
