// Chaos-harness tests (docs/ROBUSTNESS.md): a slice of the seeded sweep
// plus one named regression per bug class the sweep machinery is built
// to catch. Each regression pins a scenario that failed before its fix
// in recovery/path management landed — keep them failing loudly if the
// fix regresses.
#include "harness/chaos.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/trace_reader.h"

namespace mpq::harness {
namespace {

std::string ViolationReport(const ChaosRunResult& run) {
  std::string out = "seed " + std::to_string(run.seed) + " (" +
                    run.scenario + "):";
  for (const std::string& violation : run.violations) {
    out += " [" + violation + "]";
  }
  return out;
}

TEST(Chaos, SweepSliceIsClean) {
  // A fast slice of the full sweep (tools/ci.sh runs the wide ones).
  ChaosOptions options;
  options.seed = 1;
  options.runs = 40;
  const ChaosSweepResult sweep = RunChaos(options);
  for (const ChaosRunResult& run : sweep.runs) {
    EXPECT_TRUE(run.violations.empty()) << ViolationReport(run);
  }
  EXPECT_EQ(sweep.violation_runs, 0);
}

TEST(Chaos, DeterministicPerSeed) {
  ChaosOptions options;
  options.seed = 77;
  const ChaosRunResult a = RunChaosOne(options);
  const ChaosRunResult b = RunChaosOne(options);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(Chaos, ScenarioFamiliesAllReachable) {
  // The generator must produce every family across a modest seed range
  // (otherwise a family silently drops out of the sweep's coverage).
  bool saw_short = false, saw_long = false, saw_flap = false;
  bool saw_both = false, saw_burst = false, saw_reconf = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string name = GenerateChaosScenario(seed).name;
    saw_short |= name.find("short-outage") == 0;
    saw_long |= name.find("long-outage") == 0;
    saw_flap |= name.find("flap") == 0;
    saw_both |= name.find("both-down") == 0;
    saw_burst |= name.find("burst-loss") == 0;
    saw_reconf |= name.find("reconfigure") == 0;
  }
  EXPECT_TRUE(saw_short && saw_long && saw_flap && saw_both && saw_burst &&
              saw_reconf);
}

TEST(Chaos, IdleTimeoutDoesNotKillConnectionDuringOutage) {
  // Regression: a both-paths outage outlasting the idle timeout used to
  // make the receiving side close ("idle timeout") while the sender's
  // recovery was mid-probe — invariant 1 fired with "closed before
  // completing". The idle timer now rearms while the transfer is live.
  ChaosOptions options;
  options.seed = 9001;
  options.idle_timeout = 2 * kSecond;
  ChaosScenario scenario;
  scenario.name = "regression: 3.5s both-down vs 2s idle timeout";
  for (int path = 0; path < 2; ++path) {
    sim::PathFault down;
    down.time = 1 * kSecond;
    down.path = path;
    down.kind = sim::LinkFault::Kind::kDown;
    sim::PathFault up = down;
    up.time = 4500 * kMillisecond;
    up.kind = sim::LinkFault::Kind::kUp;
    scenario.faults.push_back(down);
    scenario.faults.push_back(up);
  }
  const ChaosRunResult run = RunChaosScenario(options, scenario);
  EXPECT_TRUE(run.completed) << ViolationReport(run);
  EXPECT_FALSE(run.closed);
  EXPECT_TRUE(run.violations.empty()) << ViolationReport(run);
}

TEST(Chaos, RepeatedFlapsDoNotStrandRecovery) {
  // Regression: runaway RTO backoff across a long flap sequence left
  // the next retransmission tens of seconds out after the final heal
  // (invariant 2: stall with a usable path). Capped by max_rto.
  ChaosOptions options;
  options.seed = 9002;
  ChaosScenario scenario;
  scenario.name = "regression: 6x flap on the only loaded path";
  TimePoint t = 1 * kSecond;
  for (int i = 0; i < 6; ++i) {
    sim::PathFault down;
    down.time = t;
    down.path = 0;
    down.kind = sim::LinkFault::Kind::kDown;
    sim::PathFault up = down;
    up.time = t + 700 * kMillisecond;
    up.kind = sim::LinkFault::Kind::kUp;
    scenario.faults.push_back(down);
    scenario.faults.push_back(up);
    t += 1 * kSecond;
  }
  const ChaosRunResult run = RunChaosScenario(options, scenario);
  EXPECT_TRUE(run.completed) << ViolationReport(run);
  EXPECT_TRUE(run.violations.empty()) << ViolationReport(run);
}

TEST(Chaos, QlogTraceCarriesFaultEvents) {
  // The fault observer bridges into the tracer: the written qlog must
  // contain one sim:* event per scheduled fault, in kind buckets.
  const std::string path =
      ::testing::TempDir() + "/chaos_fault_trace.qlog";
  ChaosOptions options;
  options.seed = 3;  // any seed; the scenario below is explicit
  options.qlog_path = path;
  ChaosScenario scenario;
  scenario.name = "qlog fault events";
  sim::PathFault down;
  down.time = 1 * kSecond;
  down.path = 1;
  down.kind = sim::LinkFault::Kind::kDown;
  sim::PathFault up = down;
  up.time = 2 * kSecond;
  up.kind = sim::LinkFault::Kind::kUp;
  scenario.faults = {down, up};
  const ChaosRunResult run = RunChaosScenario(options, scenario);
  EXPECT_TRUE(run.completed);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const obs::TraceSummary summary = obs::ReadTrace(in);
  EXPECT_EQ(summary.malformed, 0u);
  EXPECT_EQ(summary.link_faults.at("down"), 1u);
  EXPECT_EQ(summary.link_faults.at("up"), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpq::harness
