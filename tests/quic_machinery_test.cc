// Tests for the QUIC support machinery: RTT estimation, received-packet
// tracking, stream send/receive (reassembly, retransmission ranges), flow
// control, per-path loss detection, and the scheduler strategies.
#include <gtest/gtest.h>

#include <memory>

#include "cc/newreno.h"
#include "quic/ack_tracker.h"
#include "quic/path.h"
#include "quic/rtt.h"
#include "quic/scheduler.h"
#include "quic/streams.h"

namespace mpq::quic {
namespace {

// ---------------------------------------------------------------------------
// RttEstimator

TEST(Rtt, FirstSampleInitializes) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  rtt.AddSample(100 * kMillisecond, 0);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), 100 * kMillisecond);
  EXPECT_EQ(rtt.variance(), 50 * kMillisecond);
}

TEST(Rtt, SmoothingConverges) {
  RttEstimator rtt;
  for (int i = 0; i < 100; ++i) rtt.AddSample(80 * kMillisecond, 0);
  EXPECT_NEAR(static_cast<double>(rtt.smoothed()),
              static_cast<double>(80 * kMillisecond), 1000.0);
  EXPECT_LT(rtt.variance(), 2 * kMillisecond);
}

TEST(Rtt, AckDelaySubtractedWhenSafe) {
  RttEstimator rtt;
  rtt.AddSample(50 * kMillisecond, 0);  // min_rtt = 50ms
  rtt.AddSample(80 * kMillisecond, 20 * kMillisecond);
  // The adjusted sample is 60 ms; smoothed = 7/8*50 + 1/8*60 = 51.25 ms.
  EXPECT_NEAR(static_cast<double>(rtt.smoothed()), 51250.0, 100.0);
}

TEST(Rtt, AckDelayNotSubtractedBelowMin) {
  RttEstimator rtt;
  rtt.AddSample(50 * kMillisecond, 0);
  // Subtracting 30 ms would push below min_rtt: keep the raw sample.
  rtt.AddSample(60 * kMillisecond, 30 * kMillisecond);
  EXPECT_EQ(rtt.latest(), 60 * kMillisecond);
}

TEST(Rtt, RtoHasFloor) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.Rto(), RttEstimator::kDefaultRto);
  for (int i = 0; i < 50; ++i) rtt.AddSample(1 * kMillisecond, 0);
  EXPECT_GE(rtt.Rto(), RttEstimator::kMinRto);
}

// ---------------------------------------------------------------------------
// ReceivedPacketTracker

TEST(AckTracker, InOrderBuildsSingleRange) {
  ReceivedPacketTracker t;
  for (PacketNumber pn = PacketNumber{1}; pn <= 5; ++pn) {
    EXPECT_TRUE(t.OnPacketReceived(pn, static_cast<TimePoint>(pn.value()) * 100));
  }
  const auto ranges = t.BuildAckRanges();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].smallest, 1u);
  EXPECT_EQ(ranges[0].largest, 5u);
}

TEST(AckTracker, DuplicatesRejected) {
  ReceivedPacketTracker t;
  EXPECT_TRUE(t.OnPacketReceived(PacketNumber{3}, 0));
  EXPECT_FALSE(t.OnPacketReceived(PacketNumber{3}, 0));
  EXPECT_TRUE(t.OnPacketReceived(PacketNumber{1}, 0));
  EXPECT_FALSE(t.OnPacketReceived(PacketNumber{1}, 0));
  EXPECT_TRUE(t.AlreadyReceived(PacketNumber{3}));
  EXPECT_FALSE(t.AlreadyReceived(PacketNumber{2}));
}

TEST(AckTracker, GapsProduceMultipleRanges) {
  ReceivedPacketTracker t;
  for (PacketNumber pn : {PacketNumber{1}, PacketNumber{2}, PacketNumber{5},
                          PacketNumber{6}, PacketNumber{9}}) t.OnPacketReceived(pn, 0);
  const auto ranges = t.BuildAckRanges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].largest, 9u);
  EXPECT_EQ(ranges[0].smallest, 9u);
  EXPECT_EQ(ranges[1].largest, 6u);
  EXPECT_EQ(ranges[1].smallest, 5u);
  EXPECT_EQ(ranges[2].largest, 2u);
  EXPECT_EQ(ranges[2].smallest, 1u);
}

TEST(AckTracker, FillingGapCoalesces) {
  ReceivedPacketTracker t;
  for (PacketNumber pn : {PacketNumber{1}, PacketNumber{3}}) t.OnPacketReceived(pn, 0);
  EXPECT_EQ(t.BuildAckRanges().size(), 2u);
  t.OnPacketReceived(PacketNumber{2}, 0);
  const auto ranges = t.BuildAckRanges();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].smallest, 1u);
  EXPECT_EQ(ranges[0].largest, 3u);
}

TEST(AckTracker, CapsAtMaxRangesDroppingOldest) {
  ReceivedPacketTracker t;
  // 300 isolated packets: 2, 4, 6, ... — more distinct ranges than fit.
  for (PacketNumber i = PacketNumber{1}; i <= 300; ++i) t.OnPacketReceived(2 * i, 0);
  const auto ranges = t.BuildAckRanges();
  ASSERT_EQ(ranges.size(), AckFrame::kMaxAckRanges);
  // The highest PNs must be retained (they are the actionable ones).
  EXPECT_EQ(ranges.front().largest, 600u);
}

TEST(AckTracker, LargestTimeTracked) {
  ReceivedPacketTracker t;
  t.OnPacketReceived(PacketNumber{1}, 100);
  t.OnPacketReceived(PacketNumber{5}, 200);
  t.OnPacketReceived(PacketNumber{3}, 300);  // reordered: does not update largest time
  EXPECT_EQ(t.largest_received(), 5u);
  EXPECT_EQ(t.largest_received_time(), 200);
}

// ---------------------------------------------------------------------------
// SendStream / RecvStream

TEST(SendStream, ChunksRespectBudgets) {
  SendStream s(StreamId{3}, std::make_unique<PatternSource>(3, ByteCount{3000}));
  StreamFrame f;
  auto r = s.NextFrame(/*max_payload=*/ByteCount{1000}, /*allowance=*/ByteCount{10000}, f);
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(r.new_bytes, 1000u);
  EXPECT_EQ(f.offset, 0u);
  EXPECT_FALSE(f.fin);
  r = s.NextFrame(ByteCount{1000}, ByteCount{500}, f);  // connection window only allows 500
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(f.data.size(), 500u);
  r = s.NextFrame(ByteCount{5000}, ByteCount{100000}, f);
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(f.data.size(), 1500u);
  EXPECT_TRUE(f.fin);
  EXPECT_TRUE(s.AllDataSentOnce());
  EXPECT_FALSE(s.NextFrame(ByteCount{1000}, ByteCount{1000}, f).produced);  // nothing left
}

TEST(SendStream, BlockedByStreamWindow) {
  SendStream s(StreamId{3}, std::make_unique<PatternSource>(3, ByteCount{10000}));
  StreamFrame f;
  // Stream window starts at the default (16 MB) — shrink indirectly by
  // constructing a fresh stream and never raising the window: instead
  // verify the connection allowance alone can block.
  EXPECT_FALSE(s.NextFrame(ByteCount{1000}, /*allowance=*/ByteCount{0}, f).produced);
  EXPECT_FALSE(s.HasDataToSend(ByteCount{0}));
  EXPECT_TRUE(s.HasDataToSend(ByteCount{1}));
}

TEST(SendStream, RetransmitRangesTakePriorityAndCoalesce) {
  SendStream s(StreamId{3}, std::make_unique<PatternSource>(3, ByteCount{10000}));
  StreamFrame f;
  while (s.NextFrame(ByteCount{1000}, ByteCount{100000}, f).produced) {
  }
  s.OnFrameLost(ByteCount{1000}, ByteCount{500}, false);
  s.OnFrameLost(ByteCount{1500}, ByteCount{500}, false);  // adjacent: coalesces to [1000,2000)
  s.OnFrameLost(ByteCount{5000}, ByteCount{100}, false);
  auto r = s.NextFrame(ByteCount{2000}, ByteCount{0}, f);  // no allowance needed for rtx
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(r.new_bytes, 0u);
  EXPECT_EQ(f.offset, 1000u);
  EXPECT_EQ(f.data.size(), 1000u);
  r = s.NextFrame(ByteCount{2000}, ByteCount{0}, f);
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(f.offset, 5000u);
  EXPECT_EQ(f.data.size(), 100u);
  EXPECT_FALSE(s.NextFrame(ByteCount{2000}, ByteCount{0}, f).produced);
}

TEST(SendStream, LostFinIsRetransmitted) {
  SendStream s(StreamId{3}, std::make_unique<PatternSource>(3, ByteCount{100}));
  StreamFrame f;
  ASSERT_TRUE(s.NextFrame(ByteCount{1000}, ByteCount{1000}, f).produced);
  ASSERT_TRUE(f.fin);
  s.OnFrameLost(ByteCount{0}, ByteCount{100}, true);
  ASSERT_TRUE(s.NextFrame(ByteCount{1000}, ByteCount{0}, f).produced);
  EXPECT_TRUE(f.fin);
  EXPECT_EQ(f.offset, 0u);
  EXPECT_EQ(f.data.size(), 100u);
}

TEST(SendStream, RetransmitChunkSplitKeepsRemainder) {
  SendStream s(StreamId{3}, std::make_unique<PatternSource>(3, ByteCount{10000}));
  StreamFrame f;
  while (s.NextFrame(ByteCount{1000}, ByteCount{100000}, f).produced) {
  }
  s.OnFrameLost(ByteCount{0}, ByteCount{3000}, false);
  auto r = s.NextFrame(ByteCount{1200}, ByteCount{0}, f);
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(f.offset, 0u);
  EXPECT_EQ(f.data.size(), 1200u);
  r = s.NextFrame(ByteCount{5000}, ByteCount{0}, f);
  ASSERT_TRUE(r.produced);
  EXPECT_EQ(f.offset, 1200u);
  EXPECT_EQ(f.data.size(), 1800u);
}

TEST(RecvStream, InOrderDelivery) {
  RecvStream r(StreamId{3});
  ByteCount delivered{};
  bool done = false;
  r.SetSink([&](ByteCount offset, std::span<const std::uint8_t> data,
                bool fin) {
    EXPECT_EQ(offset, delivered);
    delivered += data.size();
    done = fin;
  });
  StreamFrame f;
  f.stream_id = StreamId{3};
  f.offset = ByteCount{0};
  f.data = {1, 2, 3};
  EXPECT_EQ(r.OnStreamFrame(f), 3u);
  f.offset = ByteCount{3};
  f.data = {4, 5};
  f.fin = true;
  EXPECT_EQ(r.OnStreamFrame(f), 2u);
  EXPECT_EQ(delivered, 5u);
  EXPECT_TRUE(done);
  EXPECT_TRUE(r.finished());
}

TEST(RecvStream, OutOfOrderBuffersThenDelivers) {
  RecvStream r(StreamId{3});
  ByteCount delivered{};
  r.SetSink([&](ByteCount, std::span<const std::uint8_t> data, bool) {
    delivered += data.size();
  });
  StreamFrame f;
  f.stream_id = StreamId{3};
  f.offset = ByteCount{100};
  f.data.assign(50, 7);
  r.OnStreamFrame(f);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(r.buffered_bytes(), 50u);
  f.offset = ByteCount{0};
  f.data.assign(100, 8);
  r.OnStreamFrame(f);
  EXPECT_EQ(delivered, 150u);
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(RecvStream, DuplicateAndOverlapHandled) {
  RecvStream r(StreamId{3});
  ByteCount delivered{};
  r.SetSink([&](ByteCount, std::span<const std::uint8_t> data, bool) {
    delivered += data.size();
  });
  StreamFrame f;
  f.stream_id = StreamId{3};
  f.offset = ByteCount{0};
  f.data.assign(100, 1);
  EXPECT_EQ(r.OnStreamFrame(f), 100u);
  EXPECT_EQ(r.OnStreamFrame(f), 0u);  // exact duplicate: no window growth
  f.offset = ByteCount{50};
  f.data.assign(100, 2);  // overlaps delivered prefix
  EXPECT_EQ(r.OnStreamFrame(f), 50u);
  EXPECT_EQ(delivered, 150u);  // every byte delivered exactly once
}

TEST(RecvStream, BareFinCompletesStream) {
  RecvStream r(StreamId{3});
  bool done = false;
  r.SetSink([&](ByteCount, std::span<const std::uint8_t>, bool fin) {
    if (fin) done = true;
  });
  StreamFrame data;
  data.stream_id = StreamId{3};
  data.offset = ByteCount{0};
  data.data.assign(10, 1);
  r.OnStreamFrame(data);
  StreamFrame fin;
  fin.stream_id = StreamId{3};
  fin.offset = ByteCount{10};
  fin.fin = true;
  r.OnStreamFrame(fin);
  EXPECT_TRUE(done);
  EXPECT_TRUE(r.finished());
}

// ---------------------------------------------------------------------------
// FlowController

TEST(FlowController, SendAllowanceTracksPeerLimit) {
  FlowController fc(ByteCount{1000});
  EXPECT_EQ(fc.SendAllowance(ByteCount{0}), 1000u);
  EXPECT_EQ(fc.SendAllowance(ByteCount{400}), 600u);
  EXPECT_EQ(fc.SendAllowance(ByteCount{1000}), 0u);
  fc.OnMaxData(ByteCount{1500});
  EXPECT_EQ(fc.SendAllowance(ByteCount{1000}), 500u);
  fc.OnMaxData(ByteCount{1200});  // regression must be ignored (monotonic)
  EXPECT_EQ(fc.SendAllowance(ByteCount{1000}), 500u);
}

TEST(FlowController, WindowUpdateAfterHalfWindowConsumed) {
  FlowController fc(ByteCount{1000});
  EXPECT_FALSE(fc.OnBytesConsumed(ByteCount{400}));
  EXPECT_TRUE(fc.OnBytesConsumed(ByteCount{200}));  // 600 consumed >= half of 1000
  EXPECT_EQ(fc.NextAdvertisement(), 1600u);
  EXPECT_FALSE(fc.OnBytesConsumed(ByteCount{100}));
}

TEST(FlowController, ReceiveLimitEnforced) {
  FlowController fc(ByteCount{1000});
  EXPECT_TRUE(fc.WithinReceiveLimit(ByteCount{1000}));
  EXPECT_FALSE(fc.WithinReceiveLimit(ByteCount{1001}));
}

// ---------------------------------------------------------------------------
// Path loss detection

std::unique_ptr<Path> MakePath(PathId id = PathId{0}) {
  return std::make_unique<Path>(id, sim::Address{1, 0}, sim::Address{2, 0},
                                std::make_unique<cc::NewReno>());
}

SentPacket MakeSent(PacketNumber pn, TimePoint t) {
  SentPacket p;
  p.pn = pn;
  p.sent_time = t;
  p.bytes = ByteCount{1000};
  p.frames.push_back(StreamFrame{StreamId{3},
                                 ByteCount{(pn.value() - 1) * 1000}, false,
                                 std::vector<std::uint8_t>(100)});
  return p;
}

AckFrame AckUpTo(PacketNumber largest, PathId path = PathId{0}) {
  AckFrame ack;
  ack.path_id = path;
  ack.ranges = {{PacketNumber{1}, largest}};
  return ack;
}

TEST(PathLoss, AckRemovesPacketsAndSamplesRtt) {
  auto path = MakePath();
  for (PacketNumber pn = PacketNumber{1}; pn <= 3; ++pn) {
    path->AllocatePacketNumber();
    path->OnPacketSent(MakeSent(pn, 1000 * static_cast<TimePoint>(pn)));
  }
  auto result = path->OnAckReceived(AckUpTo(PacketNumber{3}), /*now=*/50000);
  EXPECT_EQ(result.newly_acked.size(), 3u);
  EXPECT_TRUE(result.lost.empty());
  EXPECT_TRUE(result.was_new_largest);
  EXPECT_TRUE(path->rtt().has_sample());
  EXPECT_EQ(path->rtt().latest(), 50000 - 3000);
  EXPECT_FALSE(path->HasInFlight());
}

TEST(PathLoss, ReorderingThresholdDeclaresLoss) {
  auto path = MakePath();
  for (PacketNumber pn = PacketNumber{1}; pn <= 5; ++pn) {
    path->AllocatePacketNumber();
    path->OnPacketSent(MakeSent(pn, 100));
  }
  // Ack only packet 5: packets 1 and 2 are >= 3 below the largest.
  AckFrame ack;
  ack.ranges = {{PacketNumber{5}, PacketNumber{5}}};
  auto result = path->OnAckReceived(ack, 10000);
  ASSERT_EQ(result.lost.size(), 2u);
  EXPECT_EQ(result.lost[0].pn, 1u);
  EXPECT_EQ(result.lost[1].pn, 2u);
  // 3 and 4 are below threshold: a loss-time deadline must be armed.
  EXPECT_NE(path->NextLossTime(), kTimeInfinite);
}

TEST(PathLoss, TimeThresholdFiresViaDetect) {
  auto path = MakePath();
  for (PacketNumber pn = PacketNumber{1}; pn <= 2; ++pn) {
    path->AllocatePacketNumber();
    path->OnPacketSent(MakeSent(pn, 0));
  }
  AckFrame ack;
  ack.ranges = {{PacketNumber{2}, PacketNumber{2}}};
  auto result = path->OnAckReceived(ack, 100 * kMillisecond);
  EXPECT_TRUE(result.lost.empty());  // pn 1 is only 1 below largest
  const TimePoint loss_time = path->NextLossTime();
  ASSERT_NE(loss_time, kTimeInfinite);
  auto lost = path->DetectTimeThresholdLosses(loss_time);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].pn, 1u);
}

TEST(PathLoss, RtoReturnsAllInFlightAndMarksPotentiallyFailed) {
  auto path = MakePath();
  for (PacketNumber pn = PacketNumber{1}; pn <= 4; ++pn) {
    path->AllocatePacketNumber();
    path->OnPacketSent(MakeSent(pn, 1000));
  }
  EXPECT_FALSE(path->potentially_failed());
  auto lost = path->OnRetransmissionTimeout(500 * kMillisecond);
  EXPECT_EQ(lost.size(), 4u);
  EXPECT_FALSE(path->HasInFlight());
  EXPECT_TRUE(path->potentially_failed());  // no ack since last send
  EXPECT_EQ(path->rto_count(), 1);
  EXPECT_FALSE(path->Usable());
}

TEST(PathLoss, AckOnPathClearsPotentiallyFailed) {
  auto path = MakePath();
  path->AllocatePacketNumber();
  path->OnPacketSent(MakeSent(PacketNumber{1}, 1000));
  path->OnRetransmissionTimeout(500 * kMillisecond);
  EXPECT_TRUE(path->potentially_failed());
  path->AllocatePacketNumber();
  path->OnPacketSent(MakeSent(PacketNumber{2}, 600 * kMillisecond));
  AckFrame ack;
  ack.ranges = {{PacketNumber{2}, PacketNumber{2}}};
  path->OnAckReceived(ack, 700 * kMillisecond);
  EXPECT_FALSE(path->potentially_failed());
  EXPECT_EQ(path->rto_count(), 0);  // backoff reset
}

TEST(PathLoss, RtoBackoffDoubles) {
  auto path = MakePath();
  path->rtt().AddSample(100 * kMillisecond, 0);
  const Duration base = path->CurrentRto();
  path->AllocatePacketNumber();
  path->OnPacketSent(MakeSent(PacketNumber{1}, 0));
  path->OnRetransmissionTimeout(base);
  EXPECT_EQ(path->CurrentRto(), 2 * base);
  path->AllocatePacketNumber();
  path->OnPacketSent(MakeSent(PacketNumber{2}, base + 1));
  path->OnRetransmissionTimeout(3 * base);
  EXPECT_EQ(path->CurrentRto(), 4 * base);
}

// ---------------------------------------------------------------------------
// Schedulers

struct SchedulerFixture {
  std::unique_ptr<Path> a = MakePath(PathId{0});
  std::unique_ptr<Path> b = MakePath(PathId{1});
  std::vector<Path*> paths{a.get(), b.get()};
};

TEST(SchedulerTest, LowestRttPrefersFasterPath) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(100 * kMillisecond, 0);
  fx.b->rtt().AddSample(20 * kMillisecond, 0);
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.b.get());
}

TEST(SchedulerTest, UnmeasuredPathNotChosenWhenMeasuredAvailable) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(100 * kMillisecond, 0);
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.a.get());
  // ... but it IS a duplication target (§3 duplicate-while-unknown).
  const auto targets = sched.DuplicationTargets(fx.paths, fx.a.get(), ByteCount{1000});
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], fx.b.get());
}

TEST(SchedulerTest, InitialPathChosenWhenNothingMeasured) {
  SchedulerFixture fx;
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.a.get());
}

TEST(SchedulerTest, CongestionWindowGatesSelection) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(10 * kMillisecond, 0);
  fx.b->rtt().AddSample(50 * kMillisecond, 0);
  // Fill path a's window.
  const ByteCount wa = fx.a->congestion().congestion_window();
  fx.a->congestion().OnPacketSent(0, wa);
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.b.get());
  // Fill b too: nothing can send.
  const ByteCount wb = fx.b->congestion().congestion_window();
  fx.b->congestion().OnPacketSent(0, wb);
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), nullptr);
}

TEST(SchedulerTest, PotentiallyFailedPathAvoided) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(10 * kMillisecond, 0);
  fx.b->rtt().AddSample(50 * kMillisecond, 0);
  fx.a->set_potentially_failed(true);
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.b.get());
}

TEST(SchedulerTest, AllFailedFallsBackRatherThanDeadlocking) {
  SchedulerFixture fx;
  fx.a->set_potentially_failed(true);
  fx.b->set_potentially_failed(true);
  LowestRttScheduler sched;
  EXPECT_NE(sched.SelectPath(fx.paths, ByteCount{1000}), nullptr);
}

TEST(SchedulerTest, RemoteReportedFailureAvoided) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(10 * kMillisecond, 0);
  fx.b->rtt().AddSample(50 * kMillisecond, 0);
  fx.a->set_remote_reported_failed(true);  // PATHS frame said path 0 died
  LowestRttScheduler sched;
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.b.get());
}

TEST(SchedulerTest, RoundRobinAlternates) {
  SchedulerFixture fx;
  RoundRobinScheduler sched;
  Path* first = sched.SelectPath(fx.paths, ByteCount{1000});
  Path* second = sched.SelectPath(fx.paths, ByteCount{1000});
  Path* third = sched.SelectPath(fx.paths, ByteCount{1000});
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(SchedulerTest, RedundantDuplicatesEverywhere) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(10 * kMillisecond, 0);
  fx.b->rtt().AddSample(50 * kMillisecond, 0);
  RedundantScheduler sched;
  Path* chosen = sched.SelectPath(fx.paths, ByteCount{1000});
  EXPECT_EQ(chosen, fx.a.get());
  const auto targets = sched.DuplicationTargets(fx.paths, chosen, ByteCount{1000});
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], fx.b.get());
}

TEST(SchedulerTest, PingFirstProbesUnmeasuredPaths) {
  SchedulerFixture fx;
  fx.a->rtt().AddSample(10 * kMillisecond, 0);
  PingFirstScheduler sched;
  EXPECT_TRUE(sched.WantsProbe(*fx.b));
  EXPECT_FALSE(sched.WantsProbe(*fx.a));
  // Unmeasured path never selected while a measured one exists.
  EXPECT_EQ(sched.SelectPath(fx.paths, ByteCount{1000}), fx.a.get());
  EXPECT_TRUE(sched.DuplicationTargets(fx.paths, fx.a.get(), ByteCount{1000}).empty());
}

}  // namespace
}  // namespace mpq::quic
