// Congestion-control tests: slow start, AIMD/cubic reductions, in-flight
// accounting, recovery-epoch semantics, and OLIA's coupled increase.
#include <gtest/gtest.h>

#include <memory>

#include "cc/congestion.h"
#include "cc/cubic.h"
#include "cc/newreno.h"
#include "cc/lia.h"
#include "cc/olia.h"
#include "common/types.h"

namespace mpq::cc {
namespace {

constexpr ByteCount kMss = kDefaultMss;

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno cc(kMss);
  const ByteCount initial = cc.congestion_window();
  EXPECT_EQ(initial, kInitialWindowPackets * kMss);
  // Ack one full window: cwnd should double in slow start.
  TimePoint now = 0;
  ByteCount acked{};
  while (acked < initial) {
    cc.OnPacketSent(now, kMss);
    cc.OnPacketAcked(now + 1000, kMss, now, 100 * kMillisecond);
    acked += kMss;
    now += 10;
  }
  EXPECT_EQ(cc.congestion_window(), 2 * initial);
}

TEST(NewReno, LossHalvesWindowOncePerEpoch) {
  NewReno cc(kMss);
  for (int i = 0; i < 20; ++i) {
    cc.OnPacketSent(i, kMss);
    cc.OnPacketAcked(i + 5, kMss, i, kMillisecond);
  }
  const ByteCount before = cc.congestion_window();
  cc.OnPacketSent(100, kMss);
  cc.OnPacketSent(101, kMss);
  cc.OnPacketLost(200, kMss, 100);
  const ByteCount after_first = cc.congestion_window();
  EXPECT_EQ(after_first, before / 2);
  // Second loss from the same flight (sent before the reduction) must not
  // halve again.
  cc.OnPacketLost(201, kMss, 101);
  EXPECT_EQ(cc.congestion_window(), after_first);
}

TEST(NewReno, RtoCollapsesToMinimum) {
  NewReno cc(kMss);
  for (int i = 0; i < 50; ++i) {
    cc.OnPacketSent(i, kMss);
    cc.OnPacketAcked(i + 5, kMss, i, kMillisecond);
  }
  cc.OnRetransmissionTimeout(1000);
  EXPECT_EQ(cc.congestion_window(), kMinWindowPackets * kMss);
  EXPECT_TRUE(cc.InSlowStart());
}

TEST(NewReno, InFlightAccounting) {
  NewReno cc(kMss);
  EXPECT_EQ(cc.bytes_in_flight(), 0u);
  cc.OnPacketSent(0, ByteCount{1000});
  cc.OnPacketSent(0, ByteCount{2000});
  EXPECT_EQ(cc.bytes_in_flight(), 3000u);
  cc.OnPacketAcked(10, ByteCount{1000}, 0, kMillisecond);
  EXPECT_EQ(cc.bytes_in_flight(), 2000u);
  cc.OnPacketLost(20, ByteCount{2000}, 0);
  EXPECT_EQ(cc.bytes_in_flight(), 0u);
}

TEST(NewReno, CanSendRespectsWindow) {
  NewReno cc(kMss);
  const ByteCount window = cc.congestion_window();
  cc.OnPacketSent(0, window - kMss);
  EXPECT_TRUE(cc.CanSend(kMss));
  cc.OnPacketSent(0, kMss);
  EXPECT_FALSE(cc.CanSend(ByteCount{1}));
}

// ---------------------------------------------------------------------------
// CUBIC

TEST(Cubic, StartsInSlowStartWithInitialWindow) {
  Cubic cc(kMss);
  EXPECT_EQ(cc.congestion_window(), kInitialWindowPackets * kMss);
  EXPECT_TRUE(cc.InSlowStart());
}

TEST(Cubic, LossReducesByBetaNotHalf) {
  Cubic cc(kMss);
  for (int i = 0; i < 100; ++i) {
    cc.OnPacketSent(i, kMss);
    cc.OnPacketAcked(i + 5, kMss, i, 10 * kMillisecond);
  }
  const ByteCount before = cc.congestion_window();
  cc.OnPacketLost(1000, kMss, 999);
  const double ratio = static_cast<double>(cc.congestion_window()) /
                       static_cast<double>(before);
  EXPECT_NEAR(ratio, 0.7, 0.02);  // beta = 0.7
}

TEST(Cubic, WindowRegrowsAfterLoss) {
  Cubic cc(kMss);
  TimePoint now = 0;
  // Grow, then lose, then verify the cubic curve raises the window again.
  for (int i = 0; i < 200; ++i) {
    cc.OnPacketSent(now, kMss);
    cc.OnPacketAcked(now + 1000, kMss, now, 20 * kMillisecond);
    now += 1000;
  }
  cc.OnPacketLost(now, kMss, now - 1);
  const ByteCount after_loss = cc.congestion_window();
  // Ack steadily for (simulated) seconds; window must grow past the
  // post-loss value and eventually approach the previous maximum.
  for (int i = 0; i < 3000; ++i) {
    now += 10 * kMillisecond;
    cc.OnPacketSent(now, kMss);
    cc.OnPacketAcked(now, kMss, now - 20 * kMillisecond,
                     20 * kMillisecond);
  }
  EXPECT_GT(cc.congestion_window(), after_loss);
}

TEST(Cubic, AcksFromBeforeRecoveryIgnored) {
  Cubic cc(kMss);
  for (int i = 0; i < 100; ++i) {
    cc.OnPacketSent(i, kMss);
    cc.OnPacketAcked(i + 5, kMss, i, 10 * kMillisecond);
  }
  cc.OnPacketLost(500, kMss, 499);
  const ByteCount after_loss = cc.congestion_window();
  // An ack for a packet sent before the loss must not grow the window.
  cc.OnPacketSent(501, kMss);
  cc.OnPacketAcked(600, kMss, 400, 10 * kMillisecond);
  EXPECT_EQ(cc.congestion_window(), after_loss);
}

// ---------------------------------------------------------------------------
// OLIA

std::pair<std::unique_ptr<Olia>, std::unique_ptr<Olia>> TwoPaths(
    OliaCoordinator& coord) {
  return {coord.CreateController(), coord.CreateController()};
}

TEST(Olia, SlowStartPerPathUncoupled) {
  OliaCoordinator coord(kMss);
  auto [a, b] = TwoPaths(coord);
  const ByteCount initial = a->congestion_window();
  ByteCount acked{};
  TimePoint now = 0;
  while (acked < initial) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  EXPECT_EQ(a->congestion_window(), 2 * initial);
  EXPECT_EQ(b->congestion_window(), initial);  // untouched
}

TEST(Olia, LossHalvesAndLeavesSlowStart) {
  OliaCoordinator coord(kMss);
  auto [a, b] = TwoPaths(coord);
  for (int i = 0; i < 30; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  const ByteCount before = a->congestion_window();
  a->OnPacketSent(100, kMss);
  a->OnPacketLost(101, kMss, 100);
  EXPECT_EQ(a->congestion_window(), before / 2);
  EXPECT_FALSE(a->InSlowStart());
}

TEST(Olia, CongestionAvoidanceIncreaseIsGentlerThanReno) {
  // In congestion avoidance, OLIA's per-window increase with two equal
  // paths is ~1/2 MSS per RTT per path (total ~1 MSS, like one Reno flow
  // across both paths).
  OliaCoordinator coord(kMss);
  auto [a, b] = TwoPaths(coord);
  // Force both paths out of slow start.
  for (auto* p : {a.get(), b.get()}) {
    for (int i = 0; i < 30; ++i) {
      p->OnPacketSent(i, kMss);
      p->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
    }
    p->OnPacketSent(100, kMss);
    p->OnPacketLost(101, kMss, 100);
  }
  const ByteCount wa = a->congestion_window();
  // Six windows' worth of acks on path a (~6 RTTs). Reno would grow by
  // ~6 MSS; OLIA with two equal paths grows ~total 1 MSS per 2 RTTs
  // split across paths, i.e. ~1.5 MSS here.
  ByteCount acked{};
  TimePoint now = 2000;
  while (acked < 6 * wa) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  const ByteCount growth = a->congestion_window() - wa;
  EXPECT_GT(growth, 0u);
  EXPECT_LE(growth, 3 * kMss);
}

TEST(Olia, WindowNeverBelowMinimum) {
  OliaCoordinator coord(kMss);
  auto [a, b] = TwoPaths(coord);
  for (int i = 0; i < 50; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketLost(i + 1, kMss, i);
    a->OnRetransmissionTimeout(i + 2);
  }
  EXPECT_GE(a->congestion_window(), kMinWindowPackets * kMss);
}

TEST(Olia, SinglePathAlphaIsZero) {
  // With one path OLIA degenerates to a plain coupled increase with
  // alpha = 0 — growth must still be positive in congestion avoidance.
  OliaCoordinator coord(kMss);
  auto a = coord.CreateController();
  for (int i = 0; i < 30; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  a->OnPacketSent(100, kMss);
  a->OnPacketLost(101, kMss, 100);
  const ByteCount w = a->congestion_window();
  ByteCount acked{};
  TimePoint now = 2000;
  while (acked < 3 * w) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  EXPECT_GT(a->congestion_window(), w);
}

TEST(Olia, ControllersUnregisterOnDestruction) {
  OliaCoordinator coord(kMss);
  auto a = coord.CreateController();
  {
    auto b = coord.CreateController();
    // b disappears here; subsequent acks on a must not touch freed memory
    // (exercised under ASAN in CI-style runs; here it must just work).
  }
  for (int i = 0; i < 10; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// LIA (RFC 6356)

TEST(Lia, SlowStartPerPathUncoupled) {
  LiaCoordinator coord(kMss);
  auto a = coord.CreateController();
  auto b = coord.CreateController();
  const ByteCount initial = a->congestion_window();
  ByteCount acked{};
  TimePoint now = 0;
  while (acked < initial) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  EXPECT_EQ(a->congestion_window(), 2 * initial);
  EXPECT_EQ(b->congestion_window(), initial);
}

TEST(Lia, NeverMoreAggressiveThanRenoPerPath) {
  // RFC 6356's min(alpha/w_total, 1/w_r) cap: one LIA path can never grow
  // faster than a plain Reno flow would on the same path.
  LiaCoordinator coord(kMss);
  auto a = coord.CreateController();
  auto b = coord.CreateController();
  for (auto* p : {a.get(), b.get()}) {
    for (int i = 0; i < 30; ++i) {
      p->OnPacketSent(i, kMss);
      p->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
    }
    p->OnPacketSent(100, kMss);
    p->OnPacketLost(101, kMss, 100);
  }
  const ByteCount w = a->congestion_window();
  // One window's worth of acks = at most 1 MSS of growth (Reno bound).
  ByteCount acked{};
  TimePoint now = 2000;
  while (acked < w) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  EXPECT_LE(a->congestion_window() - w, kMss);
}

TEST(Lia, LossHalvesWindow) {
  LiaCoordinator coord(kMss);
  auto a = coord.CreateController();
  for (int i = 0; i < 30; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  const ByteCount before = a->congestion_window();
  a->OnPacketSent(100, kMss);
  a->OnPacketLost(101, kMss, 100);
  EXPECT_EQ(a->congestion_window(), before / 2);
}

TEST(Lia, SinglePathDegeneratesToReno) {
  // With one path, alpha = w * (w/rtt^2) / (w/rtt)^2 = 1, so the increase
  // is min(1/w, 1/w) = 1/w — exactly Reno.
  LiaCoordinator coord(kMss);
  auto a = coord.CreateController();
  for (int i = 0; i < 30; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  a->OnPacketSent(100, kMss);
  a->OnPacketLost(101, kMss, 100);
  const ByteCount w = a->congestion_window();
  ByteCount acked{};
  TimePoint now = 2000;
  while (acked < w) {
    a->OnPacketSent(now, kMss);
    a->OnPacketAcked(now + 5, kMss, now, 50 * kMillisecond);
    acked += kMss;
    ++now;
  }
  EXPECT_EQ(a->congestion_window() - w, kMss);  // 1 MSS per RTT
}

TEST(Lia, ControllersUnregisterOnDestruction) {
  LiaCoordinator coord(kMss);
  auto a = coord.CreateController();
  { auto b = coord.CreateController(); }
  for (int i = 0; i < 10; ++i) {
    a->OnPacketSent(i, kMss);
    a->OnPacketAcked(i + 5, kMss, i, 50 * kMillisecond);
  }
  SUCCEED();
}

TEST(Olia, CoupledIncreaseFavoursLowerRttPath) {
  OliaCoordinator coord(kMss);
  auto [fast, slow] = TwoPaths(coord);
  // Leave slow start on both.
  for (auto* p : {fast.get(), slow.get()}) {
    for (int i = 0; i < 30; ++i) {
      p->OnPacketSent(i, kMss);
      p->OnPacketAcked(i + 5, kMss, i,
                       p == fast.get() ? 10 * kMillisecond
                                       : 200 * kMillisecond);
    }
    p->OnPacketSent(100, kMss);
    p->OnPacketLost(101, kMss, 100);
  }
  const ByteCount wf = fast->congestion_window();
  const ByteCount ws = slow->congestion_window();
  // Same number of acked bytes on both paths.
  TimePoint now = 5000;
  for (int i = 0; i < 100; ++i) {
    fast->OnPacketSent(now, kMss);
    fast->OnPacketAcked(now + 5, kMss, now, 10 * kMillisecond);
    slow->OnPacketSent(now, kMss);
    slow->OnPacketAcked(now + 5, kMss, now, 200 * kMillisecond);
    ++now;
  }
  const ByteCount fast_growth = fast->congestion_window() - wf;
  const ByteCount slow_growth = slow->congestion_window() - ws;
  EXPECT_GT(fast_growth, slow_growth);
}

}  // namespace
}  // namespace mpq::cc
