// Unit tests for the TCP baseline's building blocks: segment wire format,
// RTT estimation with Karn filtering, and subflow handshake/loss recovery
// driven through a loopback harness.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/newreno.h"
#include "tcpsim/segment.h"
#include "tcpsim/subflow.h"

namespace mpq::tcp {
namespace {

TEST(Segment, RoundTripPlain) {
  TcpSegment s;
  s.cid = 0xABCDEF;
  s.subflow = 1;
  s.flags = kFlagAck;
  s.seq = 1000;
  s.ack = 2000;
  s.window = 16 * 1024 * 1024;
  s.data_ack = 555;
  s.payload = {1, 2, 3};
  BufWriter w;
  EncodeSegment(s, w);
  EXPECT_EQ(w.size(), SegmentWireSize(s));
  BufReader r(w.span());
  TcpSegment out;
  ASSERT_TRUE(DecodeSegment(r, out));
  EXPECT_EQ(out.cid, s.cid);
  EXPECT_EQ(out.subflow, 1);
  EXPECT_EQ(out.seq, 1000u);
  EXPECT_EQ(out.ack, 2000u);
  EXPECT_EQ(out.window, s.window);
  EXPECT_EQ(out.data_ack, 555u);
  EXPECT_EQ(out.payload, s.payload);
  EXPECT_FALSE(out.dss.has_value());
}

TEST(Segment, RoundTripWithSackAndDss) {
  TcpSegment s;
  s.flags = kFlagAck | kFlagDataFin;
  s.sacks = {{100, 200}, {300, 350}, {500, 501}};
  s.dss = DssMapping{987654321};
  s.payload.assign(1400, 7);
  BufWriter w;
  EncodeSegment(s, w);
  EXPECT_EQ(w.size(), SegmentWireSize(s));
  BufReader r(w.span());
  TcpSegment out;
  ASSERT_TRUE(DecodeSegment(r, out));
  ASSERT_EQ(out.sacks.size(), 3u);
  EXPECT_EQ(out.sacks[1].start, 300u);
  EXPECT_EQ(out.sacks[1].end, 350u);
  ASSERT_TRUE(out.dss.has_value());
  EXPECT_EQ(out.dss->dsn, 987654321u);
  EXPECT_TRUE(out.has(kFlagDataFin));
  EXPECT_EQ(out.payload.size(), 1400u);
}

TEST(Segment, TruncatedInputRejected) {
  TcpSegment s;
  s.payload.assign(100, 1);
  BufWriter w;
  EncodeSegment(s, w);
  for (std::size_t cut : {std::size_t{1}, std::size_t{10}, std::size_t{25},
                          w.size() - 1}) {
    BufReader r(w.span().subspan(0, cut));
    TcpSegment out;
    EXPECT_FALSE(DecodeSegment(r, out)) << "cut at " << cut;
  }
}

TEST(Segment, WireSizeRealistic) {
  // A bare data segment should cost roughly a TCP header (20 B) plus a
  // little; with SACK+DSS options it grows accordingly.
  TcpSegment s;
  s.window = 16 * 1024 * 1024;
  s.payload.assign(1400, 0);
  const std::size_t base = SegmentWireSize(s) - s.payload.size();
  EXPECT_GE(base, 20u);
  EXPECT_LE(base, 32u);
}

TEST(TcpRtt, Rfc6298Smoothing) {
  TcpRttEstimator rtt;
  EXPECT_EQ(rtt.Rto(), 1 * kSecond);  // initial RTO
  rtt.AddSample(100 * kMillisecond);
  EXPECT_EQ(rtt.smoothed(), 100 * kMillisecond);
  for (int i = 0; i < 50; ++i) rtt.AddSample(100 * kMillisecond);
  EXPECT_GE(rtt.Rto(), TcpRttEstimator::kMinRto);
}

// ---------------------------------------------------------------------------
// Subflow harness: two subflows wired back-to-back through simulator
// events with a configurable one-way delay and a drop filter.

class LoopbackHost : public SubflowHost {
 public:
  explicit LoopbackHost(sim::Simulator& sim) : sim_(sim) {}

  // Wiring.
  Subflow* peer = nullptr;
  Duration one_way_delay = 5 * kMillisecond;
  std::function<bool(const TcpSegment&)> drop_filter;  // true = drop

  // Observations.
  std::vector<std::uint8_t> stream_data;  // the "connection stream" we own
  std::vector<std::uint8_t> received;
  bool established = false;
  bool got_data_fin = false;
  int can_send_events = 0;
  int timeout_events = 0;
  std::vector<DsnRange> last_outstanding;

  void OnSubflowEstablished(Subflow&) override { established = true; }
  void OnSubflowDataDelivered(Subflow&, std::uint64_t dsn,
                              std::span<const std::uint8_t> data,
                              bool data_fin) override {
    if (received.size() < dsn + data.size()) {
      received.resize(dsn + data.size());
    }
    std::copy(data.begin(), data.end(), received.begin() + dsn);
    if (data_fin) got_data_fin = true;
  }
  void OnPeerWindow(std::uint64_t, std::uint64_t) override {}
  void OnSubflowCanSend() override { ++can_send_events; }
  void OnSubflowTimeout(Subflow&, std::vector<DsnRange> out) override {
    ++timeout_events;
    last_outstanding = std::move(out);
  }
  void ReadStream(std::uint64_t dsn, std::span<std::uint8_t> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = stream_data[dsn + i];
    }
  }
  std::uint64_t AdvertisedWindow() override { return 16 * 1024 * 1024; }
  std::uint64_t ConnectionDataAck() override { return 0; }
  void EmitSegment(Subflow&, TcpSegment&& segment) override {
    if (drop_filter && drop_filter(segment)) return;
    sim_.Schedule(one_way_delay,
                  [this, segment = std::move(segment)]() mutable {
                    if (peer != nullptr) peer->OnSegment(segment);
                  });
  }

 private:
  sim::Simulator& sim_;
};

struct SubflowPair {
  sim::Simulator sim;
  LoopbackHost client_host{sim};
  LoopbackHost server_host{sim};
  std::unique_ptr<Subflow> client;
  std::unique_ptr<Subflow> server;

  SubflowPair() {
    SubflowConfig config;
    client = std::make_unique<Subflow>(
        sim, client_host, 0, 42, sim::Address{1, 0}, sim::Address{2, 0},
        std::make_unique<cc::NewReno>(config.mss), config);
    server = std::make_unique<Subflow>(
        sim, server_host, 0, 42, sim::Address{2, 0}, sim::Address{1, 0},
        std::make_unique<cc::NewReno>(config.mss), config);
    client_host.peer = server.get();
    server_host.peer = client.get();
    server->Listen();
  }
};

TEST(SubflowHandshake, ThreeWayCompletesAndSamplesRtt) {
  SubflowPair pair;
  pair.client->ConnectActive(false);
  pair.sim.Run();
  EXPECT_TRUE(pair.client->established());
  EXPECT_TRUE(pair.server->established());
  EXPECT_TRUE(pair.client_host.established);
  EXPECT_TRUE(pair.server_host.established);
  // Client samples RTT from SYN -> SYN/ACK: 10 ms.
  ASSERT_TRUE(pair.client->rtt().has_sample());
  EXPECT_EQ(pair.client->rtt().smoothed(), 10 * kMillisecond);
}

TEST(SubflowHandshake, LostSynIsRetransmitted) {
  SubflowPair pair;
  int dropped = 0;
  pair.client_host.drop_filter = [&](const TcpSegment& s) {
    if (s.has(kFlagSyn) && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  };
  pair.client->ConnectActive(false);
  pair.sim.Run();
  EXPECT_TRUE(pair.client->established());
  EXPECT_EQ(dropped, 1);
  // RTT must NOT have been sampled from the retransmitted SYN (Karn).
  EXPECT_FALSE(pair.client->rtt().has_sample());
}

TEST(SubflowData, BytesFlowAndDataFinDelivered) {
  SubflowPair pair;
  pair.client->ConnectActive(false);
  pair.sim.Run();
  pair.client_host.stream_data.resize(5000);
  for (std::size_t i = 0; i < 5000; ++i) {
    pair.client_host.stream_data[i] = static_cast<std::uint8_t>(i);
  }
  pair.client->SendMappedData(0, ByteCount{1400}, false);
  pair.client->SendMappedData(1400, ByteCount{1400}, false);
  pair.client->SendMappedData(2800, ByteCount{1400}, false);
  pair.client->SendMappedData(4200, ByteCount{800}, true);
  pair.sim.Run();
  ASSERT_EQ(pair.server_host.received.size(), 5000u);
  EXPECT_EQ(pair.server_host.received, pair.client_host.stream_data);
  EXPECT_TRUE(pair.server_host.got_data_fin);
}

TEST(SubflowData, LostSegmentRecoveredByFastRetransmit) {
  SubflowPair pair;
  pair.client->ConnectActive(false);
  pair.sim.Run();
  pair.client_host.stream_data.assign(14000, 9);
  // Drop the second data segment once (seq 1401 given SYN at 0).
  bool dropped = false;
  pair.client_host.drop_filter = [&](const TcpSegment& s) {
    if (!dropped && !s.payload.empty() && s.seq == 1401) {
      dropped = true;
      return true;
    }
    return false;
  };
  for (int i = 0; i < 10; ++i) {
    pair.client->SendMappedData(i * 1400, ByteCount{1400}, i == 9);
  }
  pair.sim.Run();
  EXPECT_TRUE(dropped);
  EXPECT_EQ(pair.server_host.received.size(), 14000u);
  EXPECT_TRUE(pair.server_host.got_data_fin);
  EXPECT_GE(pair.client->segments_retransmitted(), 1u);
  // Fast retransmit, not RTO: the whole exchange stays under a second.
  EXPECT_LT(pair.sim.now(), 300 * kMillisecond);
  EXPECT_EQ(pair.client->rto_count(), 0u);
}

TEST(SubflowData, TotalLossLeadsToRtoAndPotentiallyFailed) {
  SubflowPair pair;
  pair.client->ConnectActive(false);
  pair.sim.Run();
  EXPECT_TRUE(pair.client->established());
  // Everything from the client is now dropped.
  pair.client_host.drop_filter = [](const TcpSegment&) { return true; };
  pair.client_host.stream_data.assign(2800, 5);
  pair.client->SendMappedData(0, ByteCount{1400}, false);
  pair.client->SendMappedData(1400, ByteCount{1400}, false);
  pair.sim.Run(10 * kSecond);
  EXPECT_GE(pair.client_host.timeout_events, 1);
  EXPECT_TRUE(pair.client->potentially_failed());
  EXPECT_FALSE(pair.client->Usable());
  // The outstanding DSN ranges were reported for reinjection.
  ASSERT_FALSE(pair.client_host.last_outstanding.empty());
  EXPECT_EQ(pair.client_host.last_outstanding[0].start, 0u);
}

TEST(SubflowData, SackLimitedToThreeBlocks) {
  SubflowPair pair;
  pair.client->ConnectActive(false);
  pair.sim.Run();
  pair.client_host.stream_data.assign(20 * 1400, 3);
  // Drop every other segment to create many holes at the receiver.
  pair.client_host.drop_filter = [&](const TcpSegment& s) {
    if (s.payload.empty()) return false;
    const std::uint64_t index = (s.seq - 1) / 1400;
    return index % 2 == 0 && s.seq < 14000;  // first transmission only
  };
  std::vector<TcpSegment> acks;
  pair.server_host.drop_filter = [&](const TcpSegment& s) {
    acks.push_back(s);
    return false;
  };
  for (int i = 0; i < 12; ++i) {
    pair.client->SendMappedData(i * 1400ULL, ByteCount{1400}, false);
  }
  pair.sim.Run(1 * kSecond);
  // The receiver generated SACK-bearing acks, capped at 3 blocks even
  // though there were ~6 holes.
  std::size_t max_blocks = 0;
  for (const auto& ack : acks) {
    max_blocks = std::max(max_blocks, ack.sacks.size());
  }
  EXPECT_GE(max_blocks, 2u);
  EXPECT_LE(max_blocks, 3u);
}

}  // namespace
}  // namespace mpq::tcp
