// Unit tests for the HandshakeLayer state machine against a fake
// delegate — no simulated network, no Connection. Covers CHLO padding
// and retransmission backoff, the give-up limit, server-side CHLO
// handling (including version negotiation and duplicates), client SHLO
// completion and the 0-RTT shortcut (§2).
#include "quic/handshake.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "common/buf.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/aead.h"
#include "quic/config.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"

namespace mpq::quic {
namespace {

class FakeHandshakeDelegate : public HandshakeDelegate {
 public:
  bool connection_established() const override { return established; }
  const std::vector<sim::Address>& local_addresses() const override {
    return locals;
  }
  void OnHandshakeKeys(std::unique_ptr<crypto::PacketProtection> new_seal,
                       std::unique_ptr<crypto::PacketProtection> new_open)
      override {
    ++keys_installed;
    seal = std::move(new_seal);
    open = std::move(new_open);
  }
  void SendHandshakeFrames(std::vector<Frame>& frames) override {
    sent.push_back(std::move(frames));
    frames.clear();
  }
  void RecordHandshakePacketNumber(PathId, PacketNumber,
                                   std::size_t) override {
    ++pn_records;
  }
  void OnServerChloAccepted(sim::Address local, sim::Address remote) override {
    chlo_accepted = true;
    accepted_local = local;
    accepted_remote = remote;
    established = true;  // what Connection::BecomeEstablished does
  }
  void OnPeerAddresses(std::vector<sim::Address> addresses) override {
    peer_addresses = std::move(addresses);
  }
  void OnClientHandshakeComplete() override {
    complete = true;
    established = true;
  }
  void OnZeroRttConfirmed(
      const std::vector<sim::Address>& addresses) override {
    zero_rtt_confirmed = true;
    confirmed_addresses = addresses;
  }
  void AddHandshakeRttSample(Duration rtt, bool only_if_no_sample) override {
    rtt_samples.push_back({rtt, only_if_no_sample});
  }
  void OnHandshakeFailed() override { failed = true; }

  struct RttSample {
    Duration rtt;
    bool only_if_no_sample;
  };

  std::vector<sim::Address> locals;
  std::vector<std::vector<Frame>> sent;
  std::vector<sim::Address> peer_addresses;
  std::vector<sim::Address> confirmed_addresses;
  std::vector<RttSample> rtt_samples;
  std::unique_ptr<crypto::PacketProtection> seal;
  std::unique_ptr<crypto::PacketProtection> open;
  sim::Address accepted_local{};
  sim::Address accepted_remote{};
  int keys_installed = 0;
  int pn_records = 0;
  bool established = false;
  bool chlo_accepted = false;
  bool complete = false;
  bool zero_rtt_confirmed = false;
  bool failed = false;
};

/// One endpoint's handshake layer with its fake composer.
struct Harness {
  explicit Harness(Perspective perspective, std::uint64_t seed = 42)
      : rng(seed),
        layer(sim, perspective, ConnectionId{9}, config, rng, delegate) {}

  /// Re-encode `frames` as a cleartext handshake packet and hand it to
  /// the layer, as the dispatcher would after decoding a datagram.
  void Deliver(const std::vector<Frame>& frames, sim::Address src,
               sim::Address dst) {
    BufWriter writer;
    for (const Frame& frame : frames) EncodeFrame(frame, writer);
    BufReader reader(writer.span());
    ParsedHeader header;
    header.header.handshake = true;
    header.header.packet_number = PacketNumber{1};
    header.pn_length = 1;
    const sim::Datagram datagram{src, dst, {}};
    layer.OnHandshakePacket(header, reader, datagram);
  }

  sim::Simulator sim;
  ConnectionConfig config;
  Rng rng;
  FakeHandshakeDelegate delegate;
  HandshakeLayer layer;
};

std::vector<Frame> MakeChlo(std::uint32_t version = kVersionMpq1) {
  HandshakeFrame chlo;
  chlo.message = HandshakeMessageType::kChlo;
  chlo.version = version;
  chlo.nonce.assign(16, 0x07);
  return {Frame{chlo}};
}

std::size_t WireSize(const std::vector<Frame>& frames) {
  std::size_t total = 0;
  for (const Frame& frame : frames) total += FrameWireSize(frame);
  return total;
}

const HandshakeFrame* FindHandshake(const std::vector<Frame>& frames) {
  for (const Frame& frame : frames) {
    if (const auto* hs = std::get_if<HandshakeFrame>(&frame)) return hs;
  }
  return nullptr;
}

TEST(HandshakeTest, ClientSendsPaddedChloAndRetransmitsWithBackoff) {
  Harness client(Perspective::kClient);
  client.layer.StartClient();

  ASSERT_EQ(client.delegate.sent.size(), 1u);
  const auto* chlo = FindHandshake(client.delegate.sent.front());
  ASSERT_NE(chlo, nullptr);
  EXPECT_EQ(chlo->message, HandshakeMessageType::kChlo);
  EXPECT_EQ(chlo->nonce.size(), 16u);
  // Anti-amplification: the CHLO is padded up to the minimum size.
  EXPECT_GE(WireSize(client.delegate.sent.front()), 1200u);

  // Retransmission backoff: 1 s, then 2 s.
  client.sim.Run(1 * kSecond);
  EXPECT_EQ(client.delegate.sent.size(), 2u);
  client.sim.Run(3 * kSecond);
  EXPECT_EQ(client.delegate.sent.size(), 3u);
}

TEST(HandshakeTest, ClientGivesUpAfterTenAttempts) {
  Harness client(Perspective::kClient);
  client.layer.StartClient();
  client.sim.Run();

  EXPECT_TRUE(client.delegate.failed);
  EXPECT_EQ(client.delegate.sent.size(), 10u);
  EXPECT_FALSE(client.delegate.complete);
}

TEST(HandshakeTest, ServerAcceptsChloAndRepliesWithShlo) {
  Harness server(Perspective::kServer);
  server.delegate.locals = {{2, 0}, {2, 1}};

  server.Deliver(MakeChlo(), /*src=*/{1, 0}, /*dst=*/{2, 0});

  EXPECT_EQ(server.delegate.keys_installed, 1);
  EXPECT_TRUE(server.delegate.chlo_accepted);
  EXPECT_EQ(server.delegate.accepted_local, (sim::Address{2, 0}));
  EXPECT_EQ(server.delegate.accepted_remote, (sim::Address{1, 0}));
  ASSERT_EQ(server.delegate.sent.size(), 1u);
  const auto* shlo = FindHandshake(server.delegate.sent.front());
  ASSERT_NE(shlo, nullptr);
  EXPECT_EQ(shlo->message, HandshakeMessageType::kShlo);
  EXPECT_EQ(shlo->peer_addresses, server.delegate.locals);

  // A duplicate CHLO (the client missed our SHLO) re-answers but must
  // not re-derive the session keys.
  server.Deliver(MakeChlo(), {1, 0}, {2, 0});
  EXPECT_EQ(server.delegate.keys_installed, 1);
  EXPECT_EQ(server.delegate.sent.size(), 2u);
}

TEST(HandshakeTest, ServerIgnoresUnsupportedVersion) {
  Harness server(Perspective::kServer);
  server.delegate.locals = {{2, 0}};

  server.Deliver(MakeChlo(/*version=*/0x01020304), {1, 0}, {2, 0});

  EXPECT_EQ(server.delegate.keys_installed, 0);
  EXPECT_FALSE(server.delegate.chlo_accepted);
  EXPECT_TRUE(server.delegate.sent.empty());
}

TEST(HandshakeTest, ClientCompletesOnShlo) {
  Harness client(Perspective::kClient);
  client.layer.StartClient();
  ASSERT_EQ(client.delegate.sent.size(), 1u);

  HandshakeFrame shlo;
  shlo.message = HandshakeMessageType::kShlo;
  shlo.nonce.assign(16, 0x09);
  shlo.peer_addresses = {{2, 0}, {2, 1}};
  client.Deliver({Frame{shlo}}, {2, 0}, {1, 0});

  EXPECT_TRUE(client.delegate.complete);
  EXPECT_EQ(client.delegate.keys_installed, 1);
  EXPECT_EQ(client.delegate.peer_addresses, shlo.peer_addresses);
  ASSERT_EQ(client.delegate.rtt_samples.size(), 1u);
  EXPECT_FALSE(client.delegate.rtt_samples.front().only_if_no_sample);

  // The retransmission timer is cancelled: no further CHLOs ever fire.
  client.sim.Run();
  EXPECT_EQ(client.delegate.sent.size(), 1u);
  EXPECT_FALSE(client.delegate.failed);
}

TEST(HandshakeTest, ZeroRttDerivesKeysBeforeShlo) {
  Harness client(Perspective::kClient);
  client.config.zero_rtt = true;
  client.layer.StartClient();

  // Keys and the established transition happen locally, before any
  // server response — that is the 0-RTT shortcut.
  EXPECT_EQ(client.delegate.keys_installed, 1);
  EXPECT_TRUE(client.delegate.complete);
  ASSERT_EQ(client.delegate.sent.size(), 1u);

  HandshakeFrame shlo;
  shlo.message = HandshakeMessageType::kShlo;
  shlo.peer_addresses = {{2, 0}};
  client.Deliver({Frame{shlo}}, {2, 0}, {1, 0});

  EXPECT_TRUE(client.delegate.zero_rtt_confirmed);
  EXPECT_EQ(client.delegate.confirmed_addresses, shlo.peer_addresses);
  EXPECT_EQ(client.delegate.keys_installed, 1);  // not re-derived
  ASSERT_EQ(client.delegate.rtt_samples.size(), 1u);
  EXPECT_TRUE(client.delegate.rtt_samples.front().only_if_no_sample);
}

TEST(HandshakeTest, ClientAndServerAgreeOnKeys) {
  Harness client(Perspective::kClient);
  Harness server(Perspective::kServer);
  server.delegate.locals = {{2, 0}};

  client.layer.StartClient();
  ASSERT_EQ(client.delegate.sent.size(), 1u);
  server.Deliver(client.delegate.sent.front(), {1, 0}, {2, 0});
  ASSERT_EQ(server.delegate.sent.size(), 1u);
  client.Deliver(server.delegate.sent.front(), {2, 0}, {1, 0});

  ASSERT_NE(client.delegate.seal, nullptr);
  ASSERT_NE(server.delegate.open, nullptr);

  // The client's sealer and the server's opener are the same direction:
  // a sealed message round-trips.
  const std::vector<std::uint8_t> aad{1, 2, 3};
  const std::vector<std::uint8_t> plaintext{4, 5, 6, 7};
  const auto sealed =
      client.delegate.seal->Seal(PathId{0}, PacketNumber{1}, aad, plaintext);
  std::vector<std::uint8_t> opened;
  EXPECT_TRUE(server.delegate.open->Open(PathId{0}, PacketNumber{1}, aad,
                                         sealed, opened));
  EXPECT_EQ(opened, plaintext);
  EXPECT_GE(client.delegate.pn_records + server.delegate.pn_records, 2);
}

}  // namespace
}  // namespace mpq::quic
