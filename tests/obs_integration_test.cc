// End-to-end observability tests: a lossy two-path MPQUIC transfer with
// the full tracer stack attached must fire every event type, the NDJSON
// trace read back through obs::ReadTrace must agree with the
// CountingTracer attached to the same connection, and the harness must
// emit qlog + metrics files on request.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/runner.h"
#include "obs/json.h"
#include "obs/metrics_tracer.h"
#include "obs/mux.h"
#include "obs/qlog.h"
#include "obs/trace_reader.h"
#include "quic/endpoint.h"
#include "sim/topology.h"

namespace mpq {
namespace {

constexpr StreamId kDataStream{3};

/// Lossy asymmetric two-path download with path 1 blacked out mid-run
/// (forcing RTOs and a potentially-failed transition at the sender) and a
/// small client receive window (forcing flow-control-blocked episodes).
/// The tracer mux — qlog + metrics + counting — rides on the server
/// (data-sending) connection.
struct TracedTransfer {
  std::stringstream qlog_stream;
  obs::MetricsRegistry registry;
  quic::CountingTracer counting;
  std::unique_ptr<obs::QlogTracer> qlog;
  std::unique_ptr<obs::MetricsTracer> metrics;
  obs::TracerMux mux;
  bool finished = false;

  void Run() {
    sim::Simulator sim;
    sim::Network net(sim, Rng(20170712));
    std::array<sim::PathParams, 2> paths;
    paths[0].capacity_mbps = 10;
    paths[0].rtt = 20 * kMillisecond;
    paths[0].random_loss_rate = 0.01;
    paths[1].capacity_mbps = 10;
    paths[1].rtt = 40 * kMillisecond;
    paths[1].random_loss_rate = 0.01;
    auto topo = sim::BuildTwoPathTopology(net, paths);

    quic::ConnectionConfig config;
    config.multipath = true;
    // Small flow-control window (both sides assume the same initial
    // window) so the sender regularly stalls on WINDOW_UPDATEs.
    config.receive_window = ByteCount{64 * 1024};

    qlog = std::make_unique<obs::QlogTracer>(qlog_stream, "obs-test");
    metrics = std::make_unique<obs::MetricsTracer>(registry);
    mux.Add(qlog.get());
    mux.Add(metrics.get());
    mux.Add(&counting);

    std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                            topo.server_addr.end());
    quic::ServerEndpoint server(sim, net, server_locals, config, 1);
    server.SetAcceptHandler([this](quic::Connection& conn) {
      conn.SetTracer(&mux);
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler(
          [&conn, request](StreamId id, ByteCount,
                           std::span<const std::uint8_t> data, bool fin) {
            request->append(data.begin(), data.end());
            if (fin && id == kDataStream) {
              conn.SendOnStream(kDataStream,
                                std::make_unique<PatternSource>(
                                    kDataStream,
                                    ByteCount{std::stoull(request->substr(4))}));
            }
          });
    });

    std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                            topo.client_addr.end());
    quic::ClientEndpoint client(sim, net, client_locals, config, 2);
    client.connection().SetStreamDataHandler(
        [this](StreamId, ByteCount, std::span<const std::uint8_t>,
               bool fin) {
          if (fin) finished = true;
        });
    client.connection().SetEstablishedHandler([&client] {
      const std::string request = "GET 2097152";
      client.connection().SendOnStream(
          kDataStream,
          std::make_unique<BufferSource>(std::vector<std::uint8_t>(
              request.begin(), request.end())));
    });
    client.Connect(topo.server_addr[0]);

    // Kill path 1 mid-transfer: its in-flight packets can only be
    // declared lost by the sender's RTO.
    sim.Schedule(1 * kSecond, [&topo] {
      topo.forward[1]->SetRandomLossRate(1.0);
      topo.backward[1]->SetRandomLossRate(1.0);
    });
    while (!finished && sim.RunOne(120 * kSecond)) {
    }
  }
};

TEST(ObsIntegration, EveryEventTypeFiresOnLossyTwoPathTransfer) {
  TracedTransfer t;
  t.Run();
  ASSERT_TRUE(t.finished);

  EXPECT_GT(t.counting.packets_sent, 0u);
  EXPECT_GT(t.counting.packets_received, 0u);
  EXPECT_GT(t.counting.packets_lost, 0u);
  EXPECT_GT(t.counting.frames_sent, 0u);
  EXPECT_GT(t.counting.frames_received, 0u);
  EXPECT_GT(t.counting.scheduler_decisions, 0u);
  EXPECT_GT(t.counting.path_samples, 0u);
  EXPECT_GT(t.counting.rto_events, 0u);
  EXPECT_GT(t.counting.frames_requeued, 0u);
  EXPECT_GT(t.counting.flow_blocked_events, 0u);
  EXPECT_GT(t.counting.handshake_events, 0u);
  EXPECT_FALSE(t.counting.state_changes.empty());
  // Both paths carried data; the killed path went potentially-failed.
  EXPECT_GT(t.counting.packets_sent_by_path[PathId{0}], 0u);
  EXPECT_GT(t.counting.packets_sent_by_path[PathId{1}], 0u);
  bool saw_failed = false;
  for (const auto& change : t.counting.state_changes) {
    if (change.find("potentially-failed") != std::string::npos) {
      saw_failed = true;
    }
  }
  EXPECT_TRUE(saw_failed);
}

TEST(ObsIntegration, QlogTraceAgreesWithCountingTracer) {
  TracedTransfer t;
  t.Run();
  ASSERT_TRUE(t.finished);

  const auto summary = obs::ReadTrace(t.qlog_stream);
  EXPECT_EQ(summary.malformed, 0u);
  EXPECT_EQ(summary.title, "obs-test");
  EXPECT_EQ(summary.events, t.qlog->events_written());

  // Per-path packet and loss counts must match the independent
  // CountingTracer exactly — the acceptance bar for the trace format.
  std::uint64_t traced_sent = 0;
  std::uint64_t traced_lost = 0;
  for (const auto& [path, p] : summary.paths) {
    if (path < 0) continue;
    const auto path_id = static_cast<PathId>(path);
    EXPECT_EQ(p.packets_sent, t.counting.packets_sent_by_path[path_id])
        << "path " << path;
    EXPECT_EQ(p.packets_lost, t.counting.packets_lost_by_path[path_id])
        << "path " << path;
    traced_sent += p.packets_sent;
    traced_lost += p.packets_lost;
  }
  EXPECT_EQ(traced_sent, t.counting.packets_sent);
  EXPECT_EQ(traced_lost, t.counting.packets_lost);

  // The metrics registry saw the same totals.
  EXPECT_EQ(t.registry.GetCounter("packets_sent").value(),
            t.counting.packets_sent);
  EXPECT_EQ(t.registry.GetCounter("packets_lost").value(),
            t.counting.packets_lost);

  // The full event catalogue appears in the trace.
  for (const char* name :
       {"transport:packet_sent", "transport:packet_received",
        "transport:frame_sent", "transport:frame_received",
        "transport:handshake", "transport:path_state", "scheduler:decision",
        "recovery:packet_lost", "recovery:metrics_updated", "recovery:rto",
        "recovery:frame_requeued", "flow_control:blocked"}) {
    EXPECT_TRUE(summary.events_by_name.count(name) != 0u &&
                summary.events_by_name.at(name) > 0u)
        << "missing event " << name;
  }

  // Handshake milestones arrive in protocol order.
  ASSERT_TRUE(summary.handshake_milestones.count("chlo-received") != 0u);
  ASSERT_TRUE(summary.handshake_milestones.count("established") != 0u);
  EXPECT_LE(summary.handshake_milestones.at("chlo-received"),
            summary.handshake_milestones.at("established"));
}

TEST(ObsIntegration, HarnessEmitsQlogAndMetricsFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string qlog_path = dir + "/obs_harness_test.qlog";
  const std::string metrics_path = dir + "/obs_harness_test_metrics.ndjson";
  std::remove(metrics_path.c_str());

  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 10;
  paths[0].rtt = 20 * kMillisecond;
  paths[1].capacity_mbps = 5;
  paths[1].rtt = 40 * kMillisecond;

  harness::TransferOptions options;
  options.transfer_size = ByteCount{512 * 1024};
  options.qlog_path = qlog_path;
  options.metrics_path = metrics_path;
  options.metrics_label = "harness-smoke";
  const auto result =
      harness::RunTransfer(harness::Protocol::kMpquic, paths, options);
  ASSERT_TRUE(result.completed);

  // The qlog parses and covers the transfer.
  std::ifstream qlog_in(qlog_path);
  ASSERT_TRUE(qlog_in.is_open());
  const auto summary = obs::ReadTrace(qlog_in);
  EXPECT_EQ(summary.malformed, 0u);
  EXPECT_EQ(summary.title, "harness-smoke");
  EXPECT_GT(summary.events, 0u);
  std::uint64_t bytes_sent = 0;
  for (const auto& [path, p] : summary.paths) bytes_sent += p.bytes_sent;
  EXPECT_GE(bytes_sent, options.transfer_size);

  // Exactly one metrics row, parseable, consistent with the result.
  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.is_open());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(metrics_in, line)) {
    if (line.empty()) continue;
    ++rows;
    const auto row = obs::JsonValue::Parse(line);
    ASSERT_TRUE(row.has_value()) << line;
    EXPECT_EQ(row->Find("label")->AsString(), "harness-smoke");
    EXPECT_EQ(row->Find("protocol")->AsString(), "MPQUIC");
    EXPECT_TRUE(row->Find("completed")->AsBool());
    EXPECT_NEAR(row->Find("goodput_mbps")->AsDouble(), result.goodput_mbps,
                1e-6);
    const obs::JsonValue* counters = row->Find("metrics")->Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GT(counters->Find("packets_sent")->AsInt(), 0);
  }
  EXPECT_EQ(rows, 1u);

  std::remove(qlog_path.c_str());
  std::remove(metrics_path.c_str());
}

/// The harness run and a tracer-free run of the same scenario must agree
/// on the simulated outcome: tracing is observation only (the scheduler
/// timing uses the wall clock but never feeds back into the simulation).
TEST(ObsIntegration, TracingDoesNotPerturbTheSimulation) {
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 8;
  paths[0].rtt = 30 * kMillisecond;
  paths[0].random_loss_rate = 0.005;
  paths[1].capacity_mbps = 4;
  paths[1].rtt = 50 * kMillisecond;

  harness::TransferOptions plain;
  plain.transfer_size = ByteCount{256 * 1024};
  const auto untraced =
      harness::RunTransfer(harness::Protocol::kMpquic, paths, plain);

  harness::TransferOptions traced = plain;
  const std::string dir = ::testing::TempDir();
  traced.qlog_path = dir + "/obs_perturb_test.qlog";
  traced.metrics_path = dir + "/obs_perturb_test.ndjson";
  std::remove(traced.metrics_path.c_str());
  const auto with_trace =
      harness::RunTransfer(harness::Protocol::kMpquic, paths, traced);

  EXPECT_EQ(untraced.completed, with_trace.completed);
  EXPECT_EQ(untraced.completion_time, with_trace.completion_time);
  EXPECT_EQ(untraced.bytes_received, with_trace.bytes_received);
  std::remove(traced.qlog_path.c_str());
  std::remove(traced.metrics_path.c_str());
}

}  // namespace
}  // namespace mpq
