// Unit tests for the datapath profiler (obs/prof.h): hierarchical span
// collection, runtime gating, reset semantics, folded-stack output,
// metrics export and cross-thread merging. The compiled-out
// configuration is proven zero-cost separately in prof_disabled_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace mpq::obs::prof {
namespace {

static_assert(kCompiledIn, "prof_test must build with MPQ_PROF on");

// Every test owns the global profiler state: start clean, leave clean.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

const SpanStats* Find(const std::vector<SpanStats>& spans,
                      const std::string& stack) {
  for (const auto& span : spans) {
    if (span.stack == stack) return &span;
  }
  return nullptr;
}

void RecordNested(int outer_reps, int inner_reps) {
  for (int i = 0; i < outer_reps; ++i) {
    MPQ_PROF_SCOPE("alpha/outer");
    for (int j = 0; j < inner_reps; ++j) {
      MPQ_PROF_SCOPE("beta/inner");
    }
  }
}

TEST_F(ProfTest, NestingProducesHierarchicalStacks) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/3, /*inner_reps=*/4);
  SetEnabled(false);

  const auto spans = Snapshot();
  ASSERT_EQ(spans.size(), 2u);

  const SpanStats* outer = Find(spans, "alpha;outer");
  const SpanStats* inner = Find(spans, "alpha;outer;beta;inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 12u);
  EXPECT_EQ(outer->leaf, "alpha;outer");
  EXPECT_EQ(inner->leaf, "beta;inner");

  // Inclusive-time sanity: a parent contains its children, self time is
  // the remainder.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_EQ(inner->self_ns, inner->total_ns);  // leaf: all time is self
  EXPECT_LE(outer->p50_ns, outer->p999_ns + 1.0);
}

TEST_F(ProfTest, SameLabelUnderDifferentParentsIsTwoSpans) {
  SetEnabled(true);
  {
    MPQ_PROF_SCOPE("alpha/a");
    MPQ_PROF_SCOPE("shared/leaf");
  }
  {
    MPQ_PROF_SCOPE("beta/b");
    MPQ_PROF_SCOPE("shared/leaf");
  }
  SetEnabled(false);

  const auto spans = Snapshot();
  EXPECT_NE(Find(spans, "alpha;a;shared;leaf"), nullptr);
  EXPECT_NE(Find(spans, "beta;b;shared;leaf"), nullptr);
}

TEST_F(ProfTest, RuntimeDisabledRecordsNothing) {
  ASSERT_FALSE(Enabled());
  RecordNested(/*outer_reps=*/5, /*inner_reps=*/5);
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(ProfTest, ScopeOpenedWhileDisabledNeverRecords) {
  // The gate is sampled at scope entry: enabling mid-span must not
  // produce a half-timed record when the span closes.
  {
    MPQ_PROF_SCOPE("gamma/late");
    SetEnabled(true);
  }
  SetEnabled(false);
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(ProfTest, ResetClearsRecordedSpans) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/2, /*inner_reps=*/2);
  ASSERT_FALSE(Snapshot().empty());
  Reset();
  EXPECT_TRUE(Snapshot().empty());

  // Node identity survives Reset: recording again works and counts
  // restart from zero.
  RecordNested(/*outer_reps=*/1, /*inner_reps=*/1);
  SetEnabled(false);
  const auto spans = Snapshot();
  const SpanStats* outer = Find(spans, "alpha;outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
}

TEST_F(ProfTest, FoldedStacksMatchFlamegraphFormat) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/2, /*inner_reps=*/3);
  SetEnabled(false);

  const std::string folded = FoldedStacks();
  ASSERT_FALSE(folded.empty());
  std::size_t start = 0;
  while (start < folded.size()) {
    const std::size_t end = folded.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "folded output must end in \\n";
    const std::string line = folded.substr(start, end - start);
    // "<frame>(;<frame>)* <integer>": exactly one space, numeric weight,
    // no empty frames — the grammar flamegraph.pl and speedscope parse.
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' ', space + 1), std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string weight = line.substr(space + 1);
    EXPECT_FALSE(stack.empty());
    EXPECT_NE(stack.front(), ';');
    EXPECT_NE(stack.back(), ';');
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    ASSERT_FALSE(weight.empty());
    for (char c : weight) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_GT(std::stoull(weight), 0u) << "zero-weight lines are omitted";
    start = end + 1;
  }
}

TEST_F(ProfTest, ExportToMergesIntoRegistryHistograms) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/4, /*inner_reps=*/2);
  SetEnabled(false);

  MetricsRegistry registry;
  ExportTo(registry);
  EXPECT_EQ(registry.GetHistogram("prof.alpha.outer_ns").count(), 4u);
  EXPECT_EQ(
      registry.GetHistogram("prof.alpha.outer.beta.inner_ns").count(), 8u);
}

TEST_F(ProfTest, WriteJsonEmitsParseableSpans) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/1, /*inner_reps=*/1);
  SetEnabled(false);

  JsonWriter writer;
  WriteJson(writer);
  const auto parsed = JsonValue::Parse(writer.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 2u);
  const JsonValue& span = spans->AsArray()[0];
  for (const char* key : {"stack", "leaf", "count", "total_ns", "self_ns",
                          "p50_ns", "p99_ns", "p999_ns", "max_ns"}) {
    EXPECT_NE(span.Find(key), nullptr) << key;
  }
}

TEST_F(ProfTest, SnapshotMergesExitedThreads) {
  SetEnabled(true);
  RecordNested(/*outer_reps=*/2, /*inner_reps=*/0);
  std::thread worker([] { RecordNested(/*outer_reps=*/3, /*inner_reps=*/0); });
  worker.join();  // worker's collector retains its tree on thread exit
  SetEnabled(false);

  const auto spans = Snapshot();
  const SpanStats* outer = Find(spans, "alpha;outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 5u);
}

}  // namespace
}  // namespace mpq::obs::prof
