// The bounded model checker (harness/explore.h) against both its
// self-test corpus and the real stack: the corpus proves the explorer
// catches every seeded bug class, the handshake run proves the real
// machine's bounded schedule space is violation-free, and the
// counterexample round-trip proves a recorded violation replays to the
// identical digest sequence on a fresh scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/explore.h"

namespace mpq::harness {
namespace {

TEST(ExploreSelfTest, CatchesEverySeededBugAndPassesCleanMachines) {
  std::string report;
  const int failures = RunSelfTest(report);
  EXPECT_EQ(failures, 0) << report;
}

TEST(ExploreQuic, HandshakeScheduleSpaceIsViolationFree) {
  ScenarioOptions scenario;
  scenario.name = "handshake";
  auto model = MakeQuicScenarioModel(scenario);
  ExploreOptions options;
  options.max_steps = 40;
  const ExploreResult result = Explore(*model, options);
  EXPECT_TRUE(result.violations.empty())
      << ToString(result.violations.front().kind) << ": "
      << result.violations.front().message;
  EXPECT_TRUE(result.stats.exhausted);
  EXPECT_EQ(result.stats.truncated_traces, 0u);
  EXPECT_GE(result.stats.maximal_traces, 1u);
}

TEST(ExploreQuic, ExplorationIsDeterministic) {
  ScenarioOptions scenario;
  scenario.name = "handshake";
  scenario.max_drops = 1;
  ExploreOptions options;
  options.max_steps = 60;
  auto first_model = MakeQuicScenarioModel(scenario);
  const ExploreResult first = Explore(*first_model, options);
  auto second_model = MakeQuicScenarioModel(scenario);
  const ExploreResult second = Explore(*second_model, options);
  EXPECT_EQ(first.stats.maximal_traces, second.stats.maximal_traces);
  EXPECT_EQ(first.stats.transitions, second.stats.transitions);
  EXPECT_EQ(first.stats.distinct_states, second.stats.distinct_states);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

// Enough drop budget starves the handshake (the stack gives up after
// 1 s of unanswered retries — a real protocol property, not a bug), so
// the explorer must produce a liveness counterexample; replaying it on a
// fresh model must walk the exact recorded digest sequence.
TEST(ExploreQuic, LivenessCounterexampleReplaysDigestIdentical) {
  ScenarioOptions scenario;
  scenario.name = "handshake";
  scenario.max_drops = 10;
  auto model = MakeQuicScenarioModel(scenario);
  const ExploreResult result = Explore(*model, ExploreOptions{});
  ASSERT_EQ(result.violations.size(), 1u);
  const Violation& violation = result.violations.front();
  EXPECT_EQ(violation.kind, ViolationKind::kLiveness);
  ASSERT_FALSE(violation.trace.empty());
  ASSERT_EQ(violation.digests.size(), violation.trace.size() + 1);

  auto fresh = MakeQuicScenarioModel(scenario);
  const ReplayOutcome outcome = Replay(*fresh, violation.trace);
  EXPECT_TRUE(outcome.valid);
  EXPECT_TRUE(outcome.invariants_ok);
  EXPECT_TRUE(outcome.deadlocked);
  EXPECT_FALSE(outcome.goal_reached);
  EXPECT_EQ(outcome.digests, violation.digests);
}

}  // namespace
}  // namespace mpq::harness
