// Tests for the arrival-process workload layer (harness/workload.h):
// deterministic flow plans, bounded-Pareto size bounds, Jain index
// math, end-to-end completion of a small fleet, and the core engine
// guarantee — byte-identical results for any worker-thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/workload.h"
#include "quic/endpoint.h"
#include "quic/server.h"

namespace mpq::harness {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions options;
  options.connections = 24;
  options.arrival_rate_per_s = 400.0;
  options.min_flow_bytes = ByteCount{2 * 1024};
  options.max_flow_bytes = ByteCount{32 * 1024};
  options.shards = 4;
  options.jobs = 1;
  options.seed = 7;
  return options;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JainIndex, EmptyIsZero) { EXPECT_EQ(JainIndex({}), 0.0); }

TEST(JainIndex, EqualSharesArePerfectlyFair) {
  EXPECT_DOUBLE_EQ(JainIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({3.0}), 1.0);
}

TEST(JainIndex, SingleHogIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainIndex({10.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(GenerateFlows, DeterministicAndWellFormed) {
  const WorkloadOptions options = SmallOptions();
  const auto a = GenerateFlows(options);
  const auto b = GenerateFlows(options);
  ASSERT_EQ(a.size(), options.connections);
  std::set<ConnectionId> cids;
  TimePoint prev = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_GE(a[i].arrival, prev);  // Poisson arrivals are nondecreasing
    prev = a[i].arrival;
    EXPECT_GE(a[i].size, options.min_flow_bytes);
    EXPECT_LE(a[i].size, options.max_flow_bytes);
    EXPECT_EQ(a[i].cid, quic::ClientEndpoint::CidForSeed(a[i].seed));
    EXPECT_EQ(a[i].shard, quic::ShardOf(a[i].cid, options.shards));
    EXPECT_LT(a[i].shard, options.shards);
    cids.insert(a[i].cid);
  }
  EXPECT_EQ(cids.size(), a.size());  // demux requires unique CIDs
}

TEST(GenerateFlows, SeedChangesThePlan) {
  WorkloadOptions options = SmallOptions();
  const auto a = GenerateFlows(options);
  options.seed = 8;
  const auto b = GenerateFlows(options);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].arrival != b[i].arrival || a[i].size != b[i].size;
  }
  EXPECT_TRUE(differs);
}

TEST(RunWorkload, SmallFleetCompletes) {
  const WorkloadOptions options = SmallOptions();
  const WorkloadResult result = RunWorkload(options);
  ASSERT_EQ(result.flows.size(), options.connections);
  EXPECT_EQ(result.completed, options.connections);
  EXPECT_GT(result.bytes_received.value(), 0u);
  EXPECT_GT(result.total_goodput_mbps, 0.0);
  EXPECT_GT(result.jain_index, 0.0);
  EXPECT_LE(result.jain_index, 1.0);
  EXPECT_GT(result.fct_p50_us, 0.0);
  EXPECT_GE(result.fct_p99_us, result.fct_p50_us);
  EXPECT_GE(result.fct_p999_us, result.fct_p99_us);
  EXPECT_GT(result.total_events, 0u);
  for (const FlowResult& flow : result.flows) {
    EXPECT_TRUE(flow.completed) << "flow " << flow.index;
    EXPECT_GT(flow.fct, 0);
    EXPECT_GT(flow.goodput_mbps, 0.0);
  }
}

TEST(RunWorkload, MultipathFleetCompletes) {
  WorkloadOptions options = SmallOptions();
  options.multipath = true;
  const WorkloadResult result = RunWorkload(options);
  EXPECT_EQ(result.completed, options.connections);
  EXPECT_GT(result.total_goodput_mbps, 0.0);
}

TEST(RunWorkload, ByteIdenticalForAnyJobCount) {
  // The determinism contract: shard count is the partition, job count is
  // pure execution detail. KPIs, the merged metrics snapshot, and every
  // byte of the NDJSON outputs must match between --jobs 1 and --jobs 4.
  WorkloadOptions options = SmallOptions();
  options.connections = 32;
  options.shards = 8;

  const std::string dir = ::testing::TempDir();
  options.jobs = 1;
  options.metrics_path = dir + "/workload_j1.ndjson";
  options.metrics_label = "det";
  options.qlog_path = dir + "/workload_j1.qlog";
  std::remove(options.metrics_path.c_str());
  const WorkloadResult r1 = RunWorkload(options);

  options.jobs = 4;
  options.metrics_path = dir + "/workload_j4.ndjson";
  options.qlog_path = dir + "/workload_j4.qlog";
  std::remove(options.metrics_path.c_str());
  const WorkloadResult r4 = RunWorkload(options);

  EXPECT_EQ(r1.metrics_json, r4.metrics_json);
  EXPECT_EQ(r1.completed, r4.completed);
  EXPECT_EQ(r1.bytes_received, r4.bytes_received);
  EXPECT_EQ(r1.total_events, r4.total_events);
  EXPECT_DOUBLE_EQ(r1.total_goodput_mbps, r4.total_goodput_mbps);
  EXPECT_DOUBLE_EQ(r1.jain_index, r4.jain_index);
  EXPECT_DOUBLE_EQ(r1.fct_p50_us, r4.fct_p50_us);
  EXPECT_DOUBLE_EQ(r1.fct_p99_us, r4.fct_p99_us);
  EXPECT_DOUBLE_EQ(r1.fct_p999_us, r4.fct_p999_us);
  ASSERT_EQ(r1.flows.size(), r4.flows.size());
  for (std::size_t i = 0; i < r1.flows.size(); ++i) {
    EXPECT_EQ(r1.flows[i].completed, r4.flows[i].completed);
    EXPECT_EQ(r1.flows[i].fct, r4.flows[i].fct);
    EXPECT_EQ(r1.flows[i].shard, r4.flows[i].shard);
  }
  EXPECT_EQ(Slurp(dir + "/workload_j1.ndjson"), Slurp(dir + "/workload_j4.ndjson"));
  EXPECT_EQ(Slurp(dir + "/workload_j1.qlog"), Slurp(dir + "/workload_j4.qlog"));
  EXPECT_NE(Slurp(dir + "/workload_j1.ndjson"), "");
}

TEST(RunWorkload, BatchDispatchFleetCompletes) {
  // Server batch dispatch (crypto::OpenN over same-instant datagram
  // runs) must deliver every flow just like the unbatched engine: same
  // flows completed, same bytes delivered — only event interleaving
  // (and thus FCT microseconds) may differ.
  WorkloadOptions options = SmallOptions();
  const WorkloadResult unbatched = RunWorkload(options);
  options.batch_dispatch = true;
  const WorkloadResult batched = RunWorkload(options);
  EXPECT_EQ(batched.completed, options.connections);
  EXPECT_EQ(batched.bytes_received, unbatched.bytes_received);
  for (const FlowResult& flow : batched.flows) {
    EXPECT_TRUE(flow.completed) << "flow " << flow.index;
  }
}

TEST(RunWorkload, BatchDispatchMultipathFleetCompletes) {
  WorkloadOptions options = SmallOptions();
  options.multipath = true;
  options.batch_dispatch = true;
  const WorkloadResult result = RunWorkload(options);
  EXPECT_EQ(result.completed, options.connections);
  EXPECT_GT(result.total_goodput_mbps, 0.0);
}

TEST(RunWorkload, BatchDispatchByteIdenticalForAnyJobCount) {
  // The determinism contract holds in batch mode too: the flush event
  // is per-shard simulator state, untouched by the worker pool.
  WorkloadOptions options = SmallOptions();
  options.connections = 32;
  options.shards = 8;
  options.batch_dispatch = true;
  options.jobs = 1;
  const WorkloadResult r1 = RunWorkload(options);
  options.jobs = 4;
  const WorkloadResult r4 = RunWorkload(options);
  EXPECT_EQ(r1.metrics_json, r4.metrics_json);
  EXPECT_EQ(r1.completed, r4.completed);
  EXPECT_EQ(r1.bytes_received, r4.bytes_received);
  EXPECT_EQ(r1.total_events, r4.total_events);
  ASSERT_EQ(r1.flows.size(), r4.flows.size());
  for (std::size_t i = 0; i < r1.flows.size(); ++i) {
    EXPECT_EQ(r1.flows[i].completed, r4.flows[i].completed);
    EXPECT_EQ(r1.flows[i].fct, r4.flows[i].fct);
  }
}

TEST(RunWorkload, ShardStatsDemuxCleanly) {
  // Every flow lands on the shard its CID hashes to, so no shard should
  // ever see a wrong-shard datagram; the merged registry carries the
  // per-flow FCT histogram with one sample per completed flow.
  WorkloadOptions options = SmallOptions();
  const WorkloadResult result = RunWorkload(options);
  EXPECT_NE(result.metrics_json.find("\"workload.fct_us\""), std::string::npos);
  EXPECT_NE(result.metrics_json.find("\"workload.flows_completed\":24"),
            std::string::npos);
}

}  // namespace
}  // namespace mpq::harness
