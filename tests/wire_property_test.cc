// Property test: encode→decode identity over randomly generated valid
// frames and whole packets, including random frame bundles (the packet
// assembler's output shape) and header/PN truncation at random positions.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "quic/wire.h"

namespace mpq::quic {
namespace {

Frame RandomFrame(Rng& rng) {
  switch (rng.NextBounded(9)) {
    case 0: {
      StreamFrame f;
      f.stream_id = static_cast<StreamId>(rng.NextBounded(1000) + 1);
      f.offset = ByteCount{rng.NextBounded(1ULL << 40)};
      f.fin = rng.NextBool(0.2);
      f.data.resize(rng.NextBounded(1200));
      for (auto& b : f.data) b = static_cast<std::uint8_t>(rng.NextU64());
      return f;
    }
    case 1: {
      AckFrame f;
      f.path_id = static_cast<PathId>(rng.NextBounded(8));
      f.ack_delay = static_cast<Duration>(rng.NextBounded(1 << 20));
      PacketNumber cursor{
          rng.NextBounded(1ULL << 30) + 10 * AckFrame::kMaxAckRanges + 10};
      const std::size_t count = rng.NextBounded(64) + 1;
      for (std::size_t i = 0; i < count && cursor > 8; ++i) {
        const PacketNumber largest = cursor;
        const PacketNumber smallest =
            largest - rng.NextBounded(std::min<std::uint64_t>(largest.value(), 5));
        f.ranges.push_back({smallest, largest});
        if (smallest < rng.NextBounded(6) + 2) break;
        cursor = smallest - (rng.NextBounded(4) + 2);
      }
      return f;
    }
    case 2: {
      WindowUpdateFrame f;
      f.stream_id = static_cast<StreamId>(rng.NextBounded(100));
      f.max_data = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    case 3:
      return PingFrame{};
    case 4: {
      PathsFrame f;
      const std::size_t count = rng.NextBounded(6);
      for (std::size_t i = 0; i < count; ++i) {
        f.paths.push_back({static_cast<PathId>(i),
                           rng.NextBool(0.3)
                               ? PathStatus::kPotentiallyFailed
                               : PathStatus::kActive,
                           static_cast<Duration>(rng.NextBounded(1 << 22))});
      }
      return f;
    }
    case 5: {
      AddAddressFrame f;
      const std::size_t count = rng.NextBounded(4) + 1;
      for (std::size_t i = 0; i < count; ++i) {
        f.addresses.push_back(
            {static_cast<std::uint16_t>(rng.NextBounded(100)),
             static_cast<std::uint16_t>(rng.NextBounded(4))});
      }
      return f;
    }
    case 6: {
      RemoveAddressFrame f;
      f.addresses.push_back(
          {static_cast<std::uint16_t>(rng.NextBounded(100)),
           static_cast<std::uint16_t>(rng.NextBounded(4))});
      return f;
    }
    case 7: {
      RstStreamFrame f;
      f.stream_id = static_cast<StreamId>(rng.NextBounded(1000) + 1);
      f.error_code = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
      f.final_offset = ByteCount{rng.NextBounded(1ULL << 40)};
      return f;
    }
    default: {
      BlockedFrame f;
      f.stream_id = static_cast<StreamId>(rng.NextBounded(100));
      return f;
    }
  }
}

bool FramesEqual(const Frame& a, const Frame& b) {
  // Compare through re-encoding: identical wire bytes == identical frame.
  BufWriter wa, wb;
  EncodeFrame(a, wa);
  EncodeFrame(b, wb);
  return wa.data() == wb.data();
}

TEST(WireProperty, RandomFrameRoundTripIdentity) {
  Rng rng(20170712);
  for (int iter = 0; iter < 5000; ++iter) {
    const Frame original = RandomFrame(rng);
    BufWriter writer;
    EncodeFrame(original, writer);
    ASSERT_EQ(writer.size(), FrameWireSize(original)) << "iter " << iter;
    BufReader reader(writer.span());
    Frame decoded;
    ASSERT_TRUE(DecodeFrame(reader, decoded)) << "iter " << iter;
    ASSERT_TRUE(reader.AtEnd()) << "iter " << iter;
    ASSERT_TRUE(FramesEqual(original, decoded)) << "iter " << iter;
  }
}

TEST(WireProperty, RandomFrameBundlesRoundTrip) {
  Rng rng(99);
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<Frame> bundle;
    BufWriter writer;
    const std::size_t count = rng.NextBounded(6) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      bundle.push_back(RandomFrame(rng));
      EncodeFrame(bundle.back(), writer);
    }
    // Optional trailing padding, as the packet assembler may emit.
    if (rng.NextBool(0.3)) {
      const PaddingFrame padding{
          static_cast<std::uint32_t>(rng.NextBounded(50) + 1)};
      bundle.push_back(padding);
      EncodeFrame(Frame{padding}, writer);
    }
    std::vector<Frame> decoded;
    ASSERT_TRUE(DecodePayload(writer.span(), decoded)) << "iter " << iter;
    ASSERT_EQ(decoded.size(), bundle.size()) << "iter " << iter;
    for (std::size_t i = 0; i < bundle.size(); ++i) {
      ASSERT_TRUE(FramesEqual(bundle[i], decoded[i]))
          << "iter " << iter << " frame " << i;
    }
  }
}

TEST(WireProperty, RandomHeaderRoundTripWithTruncation) {
  Rng rng(7);
  for (int iter = 0; iter < 5000; ++iter) {
    PacketHeader header;
    header.cid = rng.NextU64();
    header.multipath = rng.NextBool(0.5);
    header.path_id = static_cast<PathId>(rng.NextBounded(8));
    const PacketNumber largest_acked{rng.NextBounded(1ULL << 34)};
    // Receiver state close to the sender's: largest seen within the
    // in-flight window of what is being sent.
    header.packet_number =
        largest_acked + 1 + rng.NextBounded(1 << 12);
    const PacketNumber largest_seen =
        header.packet_number - 1 - rng.NextBounded(16);

    BufWriter writer;
    EncodeHeader(header, largest_acked, writer);
    BufReader reader(writer.span());
    ParsedHeader parsed;
    ASSERT_TRUE(DecodeHeader(reader, parsed));
    ASSERT_EQ(parsed.header.cid, header.cid);
    ASSERT_EQ(parsed.header.multipath, header.multipath);
    if (header.multipath) {
      ASSERT_EQ(parsed.header.path_id, header.path_id);
    }
    ASSERT_EQ(DecodePacketNumber(largest_seen, parsed.header.packet_number,
                                 parsed.pn_length),
              header.packet_number)
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace mpq::quic
