# Empty compiler generated dependencies file for bench_fig5_lowbdp_loss.
# This may be replaced when dependencies are built.
