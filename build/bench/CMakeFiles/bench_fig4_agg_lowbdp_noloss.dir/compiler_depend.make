# Empty compiler generated dependencies file for bench_fig4_agg_lowbdp_noloss.
# This may be replaced when dependencies are built.
