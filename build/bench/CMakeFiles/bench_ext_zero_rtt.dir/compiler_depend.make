# Empty compiler generated dependencies file for bench_ext_zero_rtt.
# This may be replaced when dependencies are built.
