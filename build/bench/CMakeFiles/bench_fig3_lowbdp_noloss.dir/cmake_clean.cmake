file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lowbdp_noloss.dir/bench_fig3_lowbdp_noloss.cc.o"
  "CMakeFiles/bench_fig3_lowbdp_noloss.dir/bench_fig3_lowbdp_noloss.cc.o.d"
  "bench_fig3_lowbdp_noloss"
  "bench_fig3_lowbdp_noloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lowbdp_noloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
