# Empty compiler generated dependencies file for bench_fig3_lowbdp_noloss.
# This may be replaced when dependencies are built.
