# Empty compiler generated dependencies file for bench_ext_migration_vs_multipath.
# This may be replaced when dependencies are built.
