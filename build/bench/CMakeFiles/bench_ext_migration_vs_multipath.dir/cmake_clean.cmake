file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_migration_vs_multipath.dir/bench_ext_migration_vs_multipath.cc.o"
  "CMakeFiles/bench_ext_migration_vs_multipath.dir/bench_ext_migration_vs_multipath.cc.o.d"
  "bench_ext_migration_vs_multipath"
  "bench_ext_migration_vs_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_migration_vs_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
