file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_streams_hol.dir/bench_ext_streams_hol.cc.o"
  "CMakeFiles/bench_ext_streams_hol.dir/bench_ext_streams_hol.cc.o.d"
  "bench_ext_streams_hol"
  "bench_ext_streams_hol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_streams_hol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
