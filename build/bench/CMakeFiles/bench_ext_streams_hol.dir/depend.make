# Empty dependencies file for bench_ext_streams_hol.
# This may be replaced when dependencies are built.
