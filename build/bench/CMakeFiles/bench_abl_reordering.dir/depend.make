# Empty dependencies file for bench_abl_reordering.
# This may be replaced when dependencies are built.
