file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_reordering.dir/bench_abl_reordering.cc.o"
  "CMakeFiles/bench_abl_reordering.dir/bench_abl_reordering.cc.o.d"
  "bench_abl_reordering"
  "bench_abl_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
