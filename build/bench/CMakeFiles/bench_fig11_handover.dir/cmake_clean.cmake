file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_handover.dir/bench_fig11_handover.cc.o"
  "CMakeFiles/bench_fig11_handover.dir/bench_fig11_handover.cc.o.d"
  "bench_fig11_handover"
  "bench_fig11_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
