# Empty dependencies file for bench_fig10_agg_short.
# This may be replaced when dependencies are built.
