file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_sack.dir/bench_abl_sack.cc.o"
  "CMakeFiles/bench_abl_sack.dir/bench_abl_sack.cc.o.d"
  "bench_abl_sack"
  "bench_abl_sack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
