# Empty dependencies file for bench_abl_sack.
# This may be replaced when dependencies are built.
