file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_agg_highbdp_noloss.dir/bench_fig7_agg_highbdp_noloss.cc.o"
  "CMakeFiles/bench_fig7_agg_highbdp_noloss.dir/bench_fig7_agg_highbdp_noloss.cc.o.d"
  "bench_fig7_agg_highbdp_noloss"
  "bench_fig7_agg_highbdp_noloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_agg_highbdp_noloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
