# Empty compiler generated dependencies file for bench_fig7_agg_highbdp_noloss.
# This may be replaced when dependencies are built.
