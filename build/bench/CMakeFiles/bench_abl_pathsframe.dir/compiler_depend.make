# Empty compiler generated dependencies file for bench_abl_pathsframe.
# This may be replaced when dependencies are built.
