file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pathsframe.dir/bench_abl_pathsframe.cc.o"
  "CMakeFiles/bench_abl_pathsframe.dir/bench_abl_pathsframe.cc.o.d"
  "bench_abl_pathsframe"
  "bench_abl_pathsframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pathsframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
