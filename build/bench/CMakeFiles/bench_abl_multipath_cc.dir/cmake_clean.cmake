file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_multipath_cc.dir/bench_abl_multipath_cc.cc.o"
  "CMakeFiles/bench_abl_multipath_cc.dir/bench_abl_multipath_cc.cc.o.d"
  "bench_abl_multipath_cc"
  "bench_abl_multipath_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_multipath_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
