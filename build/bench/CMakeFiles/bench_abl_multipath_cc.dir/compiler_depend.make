# Empty compiler generated dependencies file for bench_abl_multipath_cc.
# This may be replaced when dependencies are built.
