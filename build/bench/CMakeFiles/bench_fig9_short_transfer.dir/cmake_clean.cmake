file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_short_transfer.dir/bench_fig9_short_transfer.cc.o"
  "CMakeFiles/bench_fig9_short_transfer.dir/bench_fig9_short_transfer.cc.o.d"
  "bench_fig9_short_transfer"
  "bench_fig9_short_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_short_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
