# Empty dependencies file for bench_fig9_short_transfer.
# This may be replaced when dependencies are built.
