# Empty dependencies file for bench_fig6_agg_lowbdp_loss.
# This may be replaced when dependencies are built.
