file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_winupdate.dir/bench_abl_winupdate.cc.o"
  "CMakeFiles/bench_abl_winupdate.dir/bench_abl_winupdate.cc.o.d"
  "bench_abl_winupdate"
  "bench_abl_winupdate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_winupdate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
