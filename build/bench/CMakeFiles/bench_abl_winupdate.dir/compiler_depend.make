# Empty compiler generated dependencies file for bench_abl_winupdate.
# This may be replaced when dependencies are built.
