# Empty dependencies file for bench_fig8_highbdp_loss.
# This may be replaced when dependencies are built.
