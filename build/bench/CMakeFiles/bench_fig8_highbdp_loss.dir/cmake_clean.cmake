file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_highbdp_loss.dir/bench_fig8_highbdp_loss.cc.o"
  "CMakeFiles/bench_fig8_highbdp_loss.dir/bench_fig8_highbdp_loss.cc.o.d"
  "bench_fig8_highbdp_loss"
  "bench_fig8_highbdp_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_highbdp_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
