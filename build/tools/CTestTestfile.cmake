# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mpq_experiment_smoke "/root/repo/build/tools/mpq_experiment" "--scenarios" "/root/repo/build/tools/smoke_scenarios.txt" "--size" "262144" "--protocols" "quic,mpquic")
set_tests_properties(mpq_experiment_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
