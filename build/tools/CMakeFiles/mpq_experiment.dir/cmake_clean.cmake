file(REMOVE_RECURSE
  "CMakeFiles/mpq_experiment.dir/mpq_experiment.cc.o"
  "CMakeFiles/mpq_experiment.dir/mpq_experiment.cc.o.d"
  "mpq_experiment"
  "mpq_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
