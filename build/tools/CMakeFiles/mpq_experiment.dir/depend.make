# Empty dependencies file for mpq_experiment.
# This may be replaced when dependencies are built.
