file(REMOVE_RECURSE
  "CMakeFiles/quic_wire_test.dir/quic_wire_test.cc.o"
  "CMakeFiles/quic_wire_test.dir/quic_wire_test.cc.o.d"
  "quic_wire_test"
  "quic_wire_test.pdb"
  "quic_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
