# Empty dependencies file for quic_wire_test.
# This may be replaced when dependencies are built.
