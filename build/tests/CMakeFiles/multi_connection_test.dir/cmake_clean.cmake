file(REMOVE_RECURSE
  "CMakeFiles/multi_connection_test.dir/multi_connection_test.cc.o"
  "CMakeFiles/multi_connection_test.dir/multi_connection_test.cc.o.d"
  "multi_connection_test"
  "multi_connection_test.pdb"
  "multi_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
