# Empty dependencies file for quic_connection_test.
# This may be replaced when dependencies are built.
