# Empty compiler generated dependencies file for quic_integration_test.
# This may be replaced when dependencies are built.
