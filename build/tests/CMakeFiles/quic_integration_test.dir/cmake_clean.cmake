file(REMOVE_RECURSE
  "CMakeFiles/quic_integration_test.dir/quic_integration_test.cc.o"
  "CMakeFiles/quic_integration_test.dir/quic_integration_test.cc.o.d"
  "quic_integration_test"
  "quic_integration_test.pdb"
  "quic_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
