file(REMOVE_RECURSE
  "CMakeFiles/expdesign_test.dir/expdesign_test.cc.o"
  "CMakeFiles/expdesign_test.dir/expdesign_test.cc.o.d"
  "expdesign_test"
  "expdesign_test.pdb"
  "expdesign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdesign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
