# Empty dependencies file for expdesign_test.
# This may be replaced when dependencies are built.
