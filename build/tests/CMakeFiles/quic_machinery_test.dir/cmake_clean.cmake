file(REMOVE_RECURSE
  "CMakeFiles/quic_machinery_test.dir/quic_machinery_test.cc.o"
  "CMakeFiles/quic_machinery_test.dir/quic_machinery_test.cc.o.d"
  "quic_machinery_test"
  "quic_machinery_test.pdb"
  "quic_machinery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_machinery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
