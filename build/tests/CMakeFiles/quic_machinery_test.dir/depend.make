# Empty dependencies file for quic_machinery_test.
# This may be replaced when dependencies are built.
