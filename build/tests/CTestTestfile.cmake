# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/quic_wire_test[1]_include.cmake")
include("/root/repo/build/tests/quic_machinery_test[1]_include.cmake")
include("/root/repo/build/tests/quic_integration_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_integration_test[1]_include.cmake")
include("/root/repo/build/tests/expdesign_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/quic_connection_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_connection_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/multi_connection_test[1]_include.cmake")
include("/root/repo/build/tests/wire_property_test[1]_include.cmake")
