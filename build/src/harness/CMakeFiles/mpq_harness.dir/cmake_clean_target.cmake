file(REMOVE_RECURSE
  "libmpq_harness.a"
)
