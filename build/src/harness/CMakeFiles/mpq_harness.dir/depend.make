# Empty dependencies file for mpq_harness.
# This may be replaced when dependencies are built.
