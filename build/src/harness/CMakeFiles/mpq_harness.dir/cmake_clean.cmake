file(REMOVE_RECURSE
  "CMakeFiles/mpq_harness.dir/figures.cc.o"
  "CMakeFiles/mpq_harness.dir/figures.cc.o.d"
  "CMakeFiles/mpq_harness.dir/runner.cc.o"
  "CMakeFiles/mpq_harness.dir/runner.cc.o.d"
  "libmpq_harness.a"
  "libmpq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
