# Empty compiler generated dependencies file for mpq_expdesign.
# This may be replaced when dependencies are built.
