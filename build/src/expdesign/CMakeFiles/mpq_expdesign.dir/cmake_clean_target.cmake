file(REMOVE_RECURSE
  "libmpq_expdesign.a"
)
