file(REMOVE_RECURSE
  "CMakeFiles/mpq_expdesign.dir/scenarios.cc.o"
  "CMakeFiles/mpq_expdesign.dir/scenarios.cc.o.d"
  "CMakeFiles/mpq_expdesign.dir/wsp.cc.o"
  "CMakeFiles/mpq_expdesign.dir/wsp.cc.o.d"
  "libmpq_expdesign.a"
  "libmpq_expdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_expdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
