file(REMOVE_RECURSE
  "libmpq_quic.a"
)
