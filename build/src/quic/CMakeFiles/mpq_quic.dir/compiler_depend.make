# Empty compiler generated dependencies file for mpq_quic.
# This may be replaced when dependencies are built.
