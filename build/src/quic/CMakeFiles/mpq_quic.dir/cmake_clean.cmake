file(REMOVE_RECURSE
  "CMakeFiles/mpq_quic.dir/connection.cc.o"
  "CMakeFiles/mpq_quic.dir/connection.cc.o.d"
  "CMakeFiles/mpq_quic.dir/endpoint.cc.o"
  "CMakeFiles/mpq_quic.dir/endpoint.cc.o.d"
  "CMakeFiles/mpq_quic.dir/path.cc.o"
  "CMakeFiles/mpq_quic.dir/path.cc.o.d"
  "CMakeFiles/mpq_quic.dir/scheduler.cc.o"
  "CMakeFiles/mpq_quic.dir/scheduler.cc.o.d"
  "CMakeFiles/mpq_quic.dir/streams.cc.o"
  "CMakeFiles/mpq_quic.dir/streams.cc.o.d"
  "CMakeFiles/mpq_quic.dir/wire.cc.o"
  "CMakeFiles/mpq_quic.dir/wire.cc.o.d"
  "libmpq_quic.a"
  "libmpq_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
