
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/connection.cc" "src/quic/CMakeFiles/mpq_quic.dir/connection.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/connection.cc.o.d"
  "/root/repo/src/quic/endpoint.cc" "src/quic/CMakeFiles/mpq_quic.dir/endpoint.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/endpoint.cc.o.d"
  "/root/repo/src/quic/path.cc" "src/quic/CMakeFiles/mpq_quic.dir/path.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/path.cc.o.d"
  "/root/repo/src/quic/scheduler.cc" "src/quic/CMakeFiles/mpq_quic.dir/scheduler.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/scheduler.cc.o.d"
  "/root/repo/src/quic/streams.cc" "src/quic/CMakeFiles/mpq_quic.dir/streams.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/streams.cc.o.d"
  "/root/repo/src/quic/wire.cc" "src/quic/CMakeFiles/mpq_quic.dir/wire.cc.o" "gcc" "src/quic/CMakeFiles/mpq_quic.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mpq_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/mpq_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
