file(REMOVE_RECURSE
  "libmpq_sim.a"
)
