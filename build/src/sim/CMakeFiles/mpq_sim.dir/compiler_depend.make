# Empty compiler generated dependencies file for mpq_sim.
# This may be replaced when dependencies are built.
