file(REMOVE_RECURSE
  "CMakeFiles/mpq_sim.dir/net.cc.o"
  "CMakeFiles/mpq_sim.dir/net.cc.o.d"
  "CMakeFiles/mpq_sim.dir/simulator.cc.o"
  "CMakeFiles/mpq_sim.dir/simulator.cc.o.d"
  "CMakeFiles/mpq_sim.dir/topology.cc.o"
  "CMakeFiles/mpq_sim.dir/topology.cc.o.d"
  "libmpq_sim.a"
  "libmpq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
