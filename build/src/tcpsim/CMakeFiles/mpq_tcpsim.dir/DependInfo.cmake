
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpsim/connection.cc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/connection.cc.o" "gcc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/connection.cc.o.d"
  "/root/repo/src/tcpsim/endpoint.cc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/endpoint.cc.o" "gcc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/endpoint.cc.o.d"
  "/root/repo/src/tcpsim/segment.cc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/segment.cc.o" "gcc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/segment.cc.o.d"
  "/root/repo/src/tcpsim/subflow.cc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/subflow.cc.o" "gcc" "src/tcpsim/CMakeFiles/mpq_tcpsim.dir/subflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/mpq_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
