file(REMOVE_RECURSE
  "libmpq_tcpsim.a"
)
