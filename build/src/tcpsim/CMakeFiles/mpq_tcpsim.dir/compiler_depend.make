# Empty compiler generated dependencies file for mpq_tcpsim.
# This may be replaced when dependencies are built.
