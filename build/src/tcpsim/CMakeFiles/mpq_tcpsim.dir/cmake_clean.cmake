file(REMOVE_RECURSE
  "CMakeFiles/mpq_tcpsim.dir/connection.cc.o"
  "CMakeFiles/mpq_tcpsim.dir/connection.cc.o.d"
  "CMakeFiles/mpq_tcpsim.dir/endpoint.cc.o"
  "CMakeFiles/mpq_tcpsim.dir/endpoint.cc.o.d"
  "CMakeFiles/mpq_tcpsim.dir/segment.cc.o"
  "CMakeFiles/mpq_tcpsim.dir/segment.cc.o.d"
  "CMakeFiles/mpq_tcpsim.dir/subflow.cc.o"
  "CMakeFiles/mpq_tcpsim.dir/subflow.cc.o.d"
  "libmpq_tcpsim.a"
  "libmpq_tcpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_tcpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
