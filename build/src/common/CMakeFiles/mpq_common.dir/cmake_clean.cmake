file(REMOVE_RECURSE
  "CMakeFiles/mpq_common.dir/buf.cc.o"
  "CMakeFiles/mpq_common.dir/buf.cc.o.d"
  "CMakeFiles/mpq_common.dir/log.cc.o"
  "CMakeFiles/mpq_common.dir/log.cc.o.d"
  "CMakeFiles/mpq_common.dir/source.cc.o"
  "CMakeFiles/mpq_common.dir/source.cc.o.d"
  "CMakeFiles/mpq_common.dir/stats.cc.o"
  "CMakeFiles/mpq_common.dir/stats.cc.o.d"
  "libmpq_common.a"
  "libmpq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
