file(REMOVE_RECURSE
  "libmpq_common.a"
)
