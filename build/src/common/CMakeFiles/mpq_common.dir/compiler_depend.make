# Empty compiler generated dependencies file for mpq_common.
# This may be replaced when dependencies are built.
