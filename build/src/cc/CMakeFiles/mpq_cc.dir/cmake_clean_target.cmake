file(REMOVE_RECURSE
  "libmpq_cc.a"
)
