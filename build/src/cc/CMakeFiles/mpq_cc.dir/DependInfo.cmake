
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/cubic.cc" "src/cc/CMakeFiles/mpq_cc.dir/cubic.cc.o" "gcc" "src/cc/CMakeFiles/mpq_cc.dir/cubic.cc.o.d"
  "/root/repo/src/cc/lia.cc" "src/cc/CMakeFiles/mpq_cc.dir/lia.cc.o" "gcc" "src/cc/CMakeFiles/mpq_cc.dir/lia.cc.o.d"
  "/root/repo/src/cc/olia.cc" "src/cc/CMakeFiles/mpq_cc.dir/olia.cc.o" "gcc" "src/cc/CMakeFiles/mpq_cc.dir/olia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
