# Empty dependencies file for mpq_cc.
# This may be replaced when dependencies are built.
