file(REMOVE_RECURSE
  "CMakeFiles/mpq_cc.dir/cubic.cc.o"
  "CMakeFiles/mpq_cc.dir/cubic.cc.o.d"
  "CMakeFiles/mpq_cc.dir/lia.cc.o"
  "CMakeFiles/mpq_cc.dir/lia.cc.o.d"
  "CMakeFiles/mpq_cc.dir/olia.cc.o"
  "CMakeFiles/mpq_cc.dir/olia.cc.o.d"
  "libmpq_cc.a"
  "libmpq_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
