file(REMOVE_RECURSE
  "libmpq_crypto.a"
)
