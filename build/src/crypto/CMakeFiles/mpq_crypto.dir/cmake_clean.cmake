file(REMOVE_RECURSE
  "CMakeFiles/mpq_crypto.dir/aead.cc.o"
  "CMakeFiles/mpq_crypto.dir/aead.cc.o.d"
  "CMakeFiles/mpq_crypto.dir/chacha20.cc.o"
  "CMakeFiles/mpq_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/mpq_crypto.dir/siphash.cc.o"
  "CMakeFiles/mpq_crypto.dir/siphash.cc.o.d"
  "libmpq_crypto.a"
  "libmpq_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpq_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
