# Empty compiler generated dependencies file for mpq_crypto.
# This may be replaced when dependencies are built.
