# Empty dependencies file for wifi_to_lte_handover.
# This may be replaced when dependencies are built.
