file(REMOVE_RECURSE
  "CMakeFiles/wifi_to_lte_handover.dir/wifi_to_lte_handover.cpp.o"
  "CMakeFiles/wifi_to_lte_handover.dir/wifi_to_lte_handover.cpp.o.d"
  "wifi_to_lte_handover"
  "wifi_to_lte_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_to_lte_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
