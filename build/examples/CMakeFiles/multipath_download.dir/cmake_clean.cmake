file(REMOVE_RECURSE
  "CMakeFiles/multipath_download.dir/multipath_download.cpp.o"
  "CMakeFiles/multipath_download.dir/multipath_download.cpp.o.d"
  "multipath_download"
  "multipath_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
