# Empty dependencies file for multipath_download.
# This may be replaced when dependencies are built.
