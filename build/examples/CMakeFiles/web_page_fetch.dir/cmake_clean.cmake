file(REMOVE_RECURSE
  "CMakeFiles/web_page_fetch.dir/web_page_fetch.cpp.o"
  "CMakeFiles/web_page_fetch.dir/web_page_fetch.cpp.o.d"
  "web_page_fetch"
  "web_page_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_page_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
