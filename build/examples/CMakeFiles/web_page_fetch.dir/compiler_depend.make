# Empty compiler generated dependencies file for web_page_fetch.
# This may be replaced when dependencies are built.
