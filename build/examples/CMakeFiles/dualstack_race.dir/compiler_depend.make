# Empty compiler generated dependencies file for dualstack_race.
# This may be replaced when dependencies are built.
