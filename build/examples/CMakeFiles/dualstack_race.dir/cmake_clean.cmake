file(REMOVE_RECURSE
  "CMakeFiles/dualstack_race.dir/dualstack_race.cpp.o"
  "CMakeFiles/dualstack_race.dir/dualstack_race.cpp.o.d"
  "dualstack_race"
  "dualstack_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualstack_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
