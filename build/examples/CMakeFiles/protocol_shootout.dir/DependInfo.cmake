
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protocol_shootout.cpp" "examples/CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o" "gcc" "examples/CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mpq_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/mpq_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mpq_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpsim/CMakeFiles/mpq_tcpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/mpq_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/expdesign/CMakeFiles/mpq_expdesign.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
