// Extension experiment: stream-level head-of-line blocking.
//
// §2 of the paper: "QUIC supports different streams that prevent
// head-of-line blocking when downloading different objects from a single
// server." This bench quantifies that claim with a web-page-like
// workload: 16 objects of 64 KiB fetched concurrently over ONE
// connection. QUIC fetches each object on its own stream; the TCP
// baseline pipelines them over its single ordered byte stream
// (HTTP/1.1-style). Under random loss, a lost TCP segment stalls every
// object behind it; a lost QUIC packet stalls only the streams whose
// frames it carried.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/source.h"
#include "common/stats.h"
#include "quic/endpoint.h"
#include "sim/topology.h"
#include "tcpsim/endpoint.h"

namespace {

using namespace mpq;

constexpr int kObjects = 16;
constexpr ByteCount kObjectSize = ByteCount{64 * 1024};

std::array<sim::PathParams, 2> MakePaths(double loss) {
  sim::PathParams p;
  p.capacity_mbps = 20;
  p.rtt = 40 * kMillisecond;
  p.max_queue_delay = 50 * kMillisecond;
  p.random_loss_rate = loss;
  return {p, p};
}

struct ObjectTimes {
  std::vector<double> completion_seconds;  // one per object
  bool all_done = false;
};

ObjectTimes RunQuicObjects(double loss, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(seed));
  auto topo = sim::BuildTwoPathTopology(net, MakePaths(loss));

  quic::ConnectionConfig config;  // single path: isolate the stream effect
  quic::ServerEndpoint server(sim, net,
                              {topo.server_addr[0], topo.server_addr[1]},
                              config, seed + 1);
  server.SetAcceptHandler([](quic::Connection& conn) {
    conn.SetStreamDataHandler([&conn](StreamId id, ByteCount,
                                      std::span<const std::uint8_t>,
                                      bool fin) {
      if (fin) {
        conn.SendOnStream(id,
                          std::make_unique<PatternSource>(id, kObjectSize));
      }
    });
  });

  quic::ClientEndpoint client(sim, net, {topo.client_addr[0]}, config,
                              seed + 2);
  ObjectTimes result;
  result.completion_seconds.assign(kObjects, -1.0);
  int done = 0;
  client.connection().SetStreamDataHandler(
      [&](StreamId id, ByteCount, std::span<const std::uint8_t>, bool fin) {
        if (!fin) return;
        const int index = (static_cast<int>(id) - 5) / 2;
        if (index >= 0 && index < kObjects &&
            result.completion_seconds[index] < 0) {
          result.completion_seconds[index] = DurationToSeconds(sim.now());
          ++done;
        }
      });
  client.connection().SetEstablishedHandler([&] {
    for (int i = 0; i < kObjects; ++i) {
      client.connection().SendOnStream(
          static_cast<StreamId>(5 + 2 * i),
          std::make_unique<BufferSource>(std::vector<std::uint8_t>{'G'}));
    }
  });
  client.Connect(topo.server_addr[0]);
  while (done < kObjects && sim.RunOne(120 * kSecond)) {
  }
  result.all_done = done == kObjects;
  return result;
}

ObjectTimes RunTcpObjects(double loss, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(seed));
  auto paths = MakePaths(loss);
  for (auto& p : paths) p.per_packet_overhead = ByteCount{20};
  auto topo = sim::BuildTwoPathTopology(net, paths);

  tcp::TcpConfig config;
  tcp::TcpServerEndpoint server(sim, net,
                                {topo.server_addr[0], topo.server_addr[1]},
                                config, seed + 1);
  server.SetAcceptHandler([](tcp::TcpConnection& conn) {
    // One pipelined response of kObjects * kObjectSize bytes.
    auto responded = std::make_shared<bool>(false);
    conn.SetAppDataHandler([&conn, responded](ByteCount,
                                              std::span<const std::uint8_t> d,
                                              bool) {
      if (!d.empty() && !*responded) {  // the 1-byte pipelined "request"
        *responded = true;
        conn.SendAppData(std::make_unique<PatternSource>(
            7, kObjectSize * kObjects));
      }
    });
  });

  tcp::TcpClientEndpoint client(sim, net, {topo.client_addr[0]}, config,
                                seed + 2);
  ObjectTimes result;
  result.completion_seconds.assign(kObjects, -1.0);
  ByteCount received{};
  // HTTP/2-over-TCP framing: the 16 objects are multiplexed over the one
  // ordered byte stream in 4 KiB chunks, round-robin — like QUIC's
  // streams, except everything shares ONE retransmission order. Object i
  // completes when the stream delivers the position of its last chunk.
  constexpr ByteCount kChunk = ByteCount{4 * 1024};
  constexpr std::uint64_t kRounds = kObjectSize / kChunk;
  std::array<ByteCount, kObjects> completion_offset;
  for (int i = 0; i < kObjects; ++i) {
    completion_offset[i] = ((kRounds - 1) * kObjects + i + 1) * kChunk;
  }
  client.connection().SetAppDataHandler(
      [&](ByteCount, std::span<const std::uint8_t> d, bool) {
        received += d.size();
        for (int i = 0; i < kObjects; ++i) {
          if (result.completion_seconds[i] < 0 &&
              received >= completion_offset[i]) {
            result.completion_seconds[i] = DurationToSeconds(sim.now());
          }
        }
      });
  client.connection().SetSecureEstablishedHandler([&] {
    client.connection().SendAppData(
        std::make_unique<BufferSource>(std::vector<std::uint8_t>{'G'}));
  });
  client.Connect({topo.server_addr[0]});
  while (received < kObjectSize * kObjects &&
         sim.RunOne(120 * kSecond)) {
  }
  result.all_done =
      received >= kObjectSize * kObjects;
  return result;
}

void Row(const char* proto, const ObjectTimes& times) {
  std::printf("  %-24s mean %6.3f s   median %6.3f s   last %6.3f s%s\n",
              proto, mpq::Mean(times.completion_seconds),
              mpq::Median(times.completion_seconds),
              mpq::Percentile(times.completion_seconds, 100.0),
              times.all_done ? "" : "  (incomplete)");
}

}  // namespace

int main() {
  std::printf("=== Extension: multi-stream head-of-line blocking (§2) ===\n");
  std::printf("16 objects x 64 KiB over one connection, 20 Mbps / 40 ms; "
              "QUIC: one stream per object; TCP: HTTP/2-style chunks multiplexed on one byte stream.\n\n");
  for (double loss : {0.0, 0.01, 0.02}) {
    std::printf("random loss %.0f%%:\n", loss * 100);
    // Median-ish over three seeds, reported per-seed for transparency.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ObjectTimes quic = RunQuicObjects(loss, seed * 100);
      ObjectTimes tcp = RunTcpObjects(loss, seed * 100);
      char label[32];
      std::snprintf(label, sizeof(label), "QUIC streams (seed %llu)",
                    static_cast<unsigned long long>(seed));
      Row(label, quic);
      std::snprintf(label, sizeof(label), "TCP multiplexed (seed %llu)",
                    static_cast<unsigned long long>(seed));
      Row(label, tcp);
    }
    std::printf("\n");
  }
  std::printf(
      "reading the rows: for TCP, mean = median = last — every object is "
      "hostage to the single byte stream, so they all complete together "
      "at the final stall resolution. QUIC's objects complete "
      "progressively (mean < last) because each stream delivers "
      "independently; a lost packet delays only the streams it carried. "
      "Total transfer time is congestion-control bound and similar for "
      "both.\n");
  return 0;
}
