// Ablation: coupled OLIA vs uncoupled per-path controllers for MPQUIC
// (§3 "Congestion Control": "Using CUBIC in a multipath protocol would
// cause unfairness"; the paper integrates OLIA instead).
//
// Over disjoint paths, uncoupled CUBIC aggregates at least as much
// bandwidth (there is nothing to be fair to) — the cost of coupling shows
// as a small aggregation discount that buys fairness on shared
// bottlenecks. This bench quantifies that discount across the low-BDP
// design, plus the throughput each scheme extracts per path.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq;
  using namespace mpq::harness;
  ClassEvalOptions base = FigureDefaults(argc, argv);
  base.scenario_count = std::min<std::size_t>(base.scenario_count, 40);

  std::printf("=== Ablation: multipath congestion control (MPQUIC) ===\n\n");
  struct Variant {
    const char* name;
    cc::Algorithm algorithm;
  };
  for (auto klass : {expdesign::ScenarioClass::kLowBdpNoLoss,
                     expdesign::ScenarioClass::kLowBdpLosses}) {
    const auto scenarios = expdesign::GenerateScenarios(
        klass, base.scenario_count, base.seed);
    std::printf("%s:\n", expdesign::ToString(klass).c_str());
    for (const Variant& variant :
         {Variant{"OLIA (coupled, paper)", cc::Algorithm::kOlia},
          Variant{"LIA (coupled, RFC 6356)", cc::Algorithm::kLia},
          Variant{"CUBIC per path (uncoupled)", cc::Algorithm::kCubic},
          Variant{"NewReno per path (uncoupled)", cc::Algorithm::kNewReno}}) {
      std::vector<double> times;
      std::vector<double> goodputs;
      for (const auto& scenario : scenarios) {
        TransferOptions options = base.base_options;
        options.transfer_size = base.transfer_size;
        options.time_limit = base.time_limit;
        options.seed = base.seed + 43ULL * scenario.index;
        options.multipath_congestion = variant.algorithm;
        const TransferResult result =
            RunTransfer(Protocol::kMpquic, scenario.paths, options);
        times.push_back(DurationToSeconds(result.completion_time));
        goodputs.push_back(result.goodput_mbps);
      }
      std::printf("  %-32s median %7.2f s   mean goodput %6.2f Mbps\n",
                  variant.name, Median(times), Mean(goodputs));
    }
    std::printf("\n");
  }
  std::printf(
      "finding: on loss-free disjoint paths the coupling costs little. "
      "Under RANDOM loss, OLIA's coupled increase (each path grows at a "
      "fraction of Reno's rate) caps the aggregate near one CUBIC flow — "
      "this, not a protocol defect, is why the Fig. 6 aggregation benefit "
      "collapses toward 0 in this reproduction (see EXPERIMENTS.md).\n");
  return 0;
}
