// Many-connection server-engine benchmark (BENCH_PR9.json).
//
// Sweeps the arrival-process workload (harness/workload.h) over
// connections x {single-path QUIC, 2-path MPQUIC}: each cell runs a
// fleet of Poisson-arriving bounded-Pareto flows against the sharded
// quic::Server and reports aggregate goodput, p50/p99/p999 FCT, the
// Jain fairness index, and engine throughput (simulator events per
// wall-clock second). A determinism cell re-runs the 1000-connection
// fleet at --jobs 1 and --jobs N and asserts byte-identical KPIs.
//
// The emitted JSON keeps the `current.engine_packets_per_sec` field the
// ci.sh perf-regression gate compares (same single-connection engine
// transfer bench_perf_baseline measures), so committing this file as
// the newest BENCH_PR*.json keeps the gate armed.
//
//   --out FILE   also write the JSON document to FILE
//   --quick      cap the sweep at 100 connections (CI-sized)
//   --prof       embed a profiled engine transfer (needs -DMPQ_PROF=ON)
//   --jobs N     worker threads for the workload shards (0 = auto)
//   --smoke N    run ONE N-connection cell and print only its
//                deterministic KPIs (no wall-clock fields) — the ci.sh
//                scale stage diffs this output across --jobs values
//   --multipath  (smoke mode) use 2-path MPQUIC for the smoke cell
//   --no-batch   disable server batch dispatch (A/B the OpenN path)
//   --seed S     (smoke mode) workload master seed
//   --metrics F  (smoke mode) also write per-flow NDJSON rows to F,
//                readable with `mpq_trace --aggregate F`
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_simd.h"
#include "common/source.h"
#include "harness/parallel.h"
#include "harness/workload.h"
#include "obs/json.h"
#include "obs/prof.h"
#include "quic/endpoint.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace {

using namespace mpq;
using Clock = std::chrono::steady_clock;

// Same reference point bench_perf_baseline embeds (PR-2 capture): the
// gate compares *measured* numbers across BENCH files, this is only
// context for human readers.
constexpr double kBaselineEnginePacketsPerSec = 86030.0;

// --no-batch: run the server without batch dispatch (A/B comparisons).
bool g_no_batch = false;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct EngineThroughput {
  double wall_s = 0;
  double total_wall_s = 0;
  std::uint64_t packets = 0;
};

/// The ci.sh perf gate's yardstick: one 8 MB MPQUIC transfer over two
/// 20 Mbps paths, identical to bench_perf_baseline's EngineTransfer so
/// `current.engine_packets_per_sec` stays comparable across BENCH files.
EngineThroughput EngineTransfer(int reps) {
  constexpr ByteCount kSize{8 * 1024 * 1024};
  EngineThroughput out;
  std::vector<double> walls;
  for (int run = 0; run < reps; ++run) {
    sim::Simulator sim;
    sim::Network net(sim, Rng(12345));
    std::array<sim::PathParams, 2> params;
    params[0].capacity_mbps = 20;
    params[1].capacity_mbps = 20;
    params[0].rtt = 20 * kMillisecond;
    params[1].rtt = 40 * kMillisecond;
    for (auto& p : params) p.max_queue_delay = 60 * kMillisecond;
    auto topo = sim::BuildTwoPathTopology(net, params);

    quic::ConnectionConfig config;
    config.multipath = true;
    config.congestion = cc::Algorithm::kOlia;

    std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                            topo.server_addr.end());
    quic::ServerEndpoint server(sim, net, server_locals, config, 7);
    server.SetAcceptHandler([](quic::Connection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler(
          [&conn, request](StreamId id, ByteCount,
                           std::span<const std::uint8_t> data, bool fin) {
            request->append(data.begin(), data.end());
            if (fin && id == 3) {
              const ByteCount size = ByteCount{std::stoull(request->substr(4))};
              conn.SendOnStream(StreamId{3},
                                std::make_unique<PatternSource>(3, size));
            }
          });
    });
    std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                            topo.client_addr.end());
    quic::ClientEndpoint client(sim, net, client_locals, config, 8);
    ByteCount received{};
    bool finished = false;
    client.connection().SetStreamDataHandler(
        [&](StreamId, ByteCount, std::span<const std::uint8_t> data,
            bool fin) {
          received += data.size();
          if (fin) finished = true;
        });
    client.connection().SetEstablishedHandler([&] {
      const std::string request = "GET " + std::to_string(kSize.value());
      client.connection().SendOnStream(
          StreamId{3},
          std::make_unique<BufferSource>(
              std::vector<std::uint8_t>(request.begin(), request.end())));
    });
    const auto t0 = Clock::now();
    client.Connect(topo.server_addr[0]);
    while (!finished && sim.RunOne(600 * kSecond)) {
    }
    walls.push_back(Seconds(t0, Clock::now()));
    if (!finished || received != kSize) std::abort();
    out.packets = client.connection().stats().packets_sent +
                  client.connection().stats().packets_received;
  }
  for (const double w : walls) out.total_wall_s += w;
  out.wall_s = Median(std::move(walls));
  return out;
}

harness::WorkloadOptions CellOptions(std::uint32_t connections,
                                     bool multipath, int jobs,
                                     std::uint64_t seed) {
  harness::WorkloadOptions options;
  options.connections = connections;
  options.multipath = multipath;
  // The shard count is part of the workload definition (it changes the
  // topology), so it is fixed per cell, never derived from the machine.
  options.shards = connections >= 8 ? 8 : 1;
  options.jobs = jobs;
  options.seed = seed;
  // The engine bench runs the server with batch dispatch: same-instant
  // datagram runs hit crypto::OpenN and one send-loop pass (the figure
  // benches stay unbatched — their event stream is the seed baseline).
  options.batch_dispatch = !g_no_batch;
  return options;
}

/// Deterministic KPI fields only — byte-identical for any --jobs value.
void WriteCellKpis(obs::JsonWriter& writer,
                   const harness::WorkloadOptions& options,
                   const harness::WorkloadResult& result) {
  writer.Key("connections").UInt(options.connections);
  writer.Key("multipath").Bool(options.multipath);
  writer.Key("shards").UInt(options.shards);
  writer.Key("completed").UInt(result.completed);
  writer.Key("bytes_received").UInt(result.bytes_received.value());
  writer.Key("total_goodput_mbps").Double(result.total_goodput_mbps);
  writer.Key("jain_index").Double(result.jain_index);
  writer.Key("fct_p50_us").Double(result.fct_p50_us);
  writer.Key("fct_p99_us").Double(result.fct_p99_us);
  writer.Key("fct_p999_us").Double(result.fct_p999_us);
  writer.Key("events").UInt(result.total_events);
}

int RunSmoke(std::uint32_t connections, bool multipath, int jobs,
             std::uint64_t seed, const std::string& metrics_path) {
  harness::WorkloadOptions options =
      CellOptions(connections, multipath, jobs, seed);
  if (!metrics_path.empty()) {
    std::remove(metrics_path.c_str());
    options.metrics_path = metrics_path;
    options.metrics_label = "smoke-" + std::to_string(connections) +
                            (multipath ? "-mp" : "-sp");
  }
  const harness::WorkloadResult result = harness::RunWorkload(options);
  obs::JsonWriter writer;
  writer.BeginObject();
  WriteCellKpis(writer, options, result);
  writer.EndObject();
  // metrics_json is already a complete JSON object; splice it in by hand
  // (JsonWriter has no raw-embed call).
  std::printf("{\"kpis\":%s,\"metrics\":%s}\n", writer.str().c_str(),
              result.metrics_json.c_str());
  return result.completed == result.flows.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string metrics_path;
  bool prof = false;
  bool quick = false;
  bool multipath = false;
  int jobs = 0;
  std::uint64_t seed = 1;
  std::uint32_t smoke = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      prof = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--multipath") == 0) {
      multipath = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0 && i + 1 < argc) {
      smoke = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      g_no_batch = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke > 0) return RunSmoke(smoke, multipath, jobs, seed, metrics_path);

  const EngineThroughput engine = EngineTransfer(/*reps=*/5);
  const double engine_pps =
      static_cast<double>(engine.packets) / engine.wall_s;

  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("hardware_threads")
      .UInt(std::max(1u, std::thread::hardware_concurrency()));
  writer.Key("baseline");
  writer.BeginObject();
  writer.Key("engine_packets_per_sec").Double(kBaselineEnginePacketsPerSec);
  writer.EndObject();
  writer.Key("current");
  writer.BeginObject();
  writer.Key("engine_wall_s").Double(engine.wall_s);
  writer.Key("engine_packets").UInt(engine.packets);
  writer.Key("engine_packets_per_sec").Double(engine_pps);
  writer.EndObject();
  bench::WriteSimdBlock(writer);

  // The sweep matrix: connections x path count. Each cell is a fresh
  // deterministic fleet; wall_s/events_per_sec are the machine-dependent
  // engine-throughput readings, everything else is seed-determined.
  std::vector<std::uint32_t> fleet_sizes = {1, 10, 100, 1000, 10000};
  if (quick) fleet_sizes = {1, 10, 100};
  writer.Key("many_conn");
  writer.BeginArray();
  for (const std::uint32_t connections : fleet_sizes) {
    for (const bool mp : {false, true}) {
      const harness::WorkloadOptions options =
          CellOptions(connections, mp, jobs, seed);
      const auto t0 = Clock::now();
      const harness::WorkloadResult result = harness::RunWorkload(options);
      const double wall_s = Seconds(t0, Clock::now());
      writer.BeginObject();
      WriteCellKpis(writer, options, result);
      writer.Key("wall_s").Double(wall_s);
      writer.Key("events_per_sec")
          .Double(static_cast<double>(result.total_events) / wall_s);
      writer.EndObject();
      std::fprintf(stderr,
                   "many_conn conns=%u multipath=%d: %u/%zu completed, "
                   "%.2f Mbps, jain %.3f, %.0f events/s\n",
                   connections, mp ? 1 : 0, result.completed,
                   result.flows.size(), result.total_goodput_mbps,
                   result.jain_index,
                   static_cast<double>(result.total_events) / wall_s);
    }
  }
  writer.EndArray();

  // Determinism cell: the acceptance bar — the same fleet at --jobs 1
  // and --jobs N must produce identical KPIs and metrics snapshots.
  {
    const std::uint32_t conns = quick ? 100 : 1000;
    const harness::WorkloadOptions base = CellOptions(conns, true, 1, seed);
    const harness::WorkloadResult serial = harness::RunWorkload(base);
    harness::WorkloadOptions wide = base;
    // At least 4 worker threads even on small machines — a 1-vs-1
    // comparison would prove nothing.
    wide.jobs = std::max(4, harness::DefaultJobs());
    const harness::WorkloadResult parallel = harness::RunWorkload(wide);
    const bool identical =
        serial.metrics_json == parallel.metrics_json &&
        serial.total_events == parallel.total_events &&
        serial.completed == parallel.completed &&
        serial.total_goodput_mbps == parallel.total_goodput_mbps &&
        serial.jain_index == parallel.jain_index;
    writer.Key("determinism");
    writer.BeginObject();
    writer.Key("connections").UInt(conns);
    writer.Key("jobs_compared").UInt(static_cast<std::uint64_t>(wide.jobs));
    writer.Key("identical").Bool(identical);
    writer.EndObject();
    if (!identical) {
      std::fprintf(stderr, "determinism check FAILED: --jobs 1 vs --jobs %d "
                           "KPIs differ\n",
                   wide.jobs);
      return 1;
    }
  }

  if (quick) writer.Key("quick").Bool(true);
  if (prof) {
    if (!obs::prof::kCompiledIn) {
      std::fprintf(stderr, "--prof requires a build with -DMPQ_PROF=ON\n");
      return 2;
    }
    obs::prof::Reset();
    obs::prof::SetEnabled(true);
    const EngineThroughput profiled = EngineTransfer(/*reps=*/3);
    obs::prof::SetEnabled(false);
    const auto spans = obs::prof::Snapshot();
    const double wall_ns = profiled.total_wall_s * 1e9;
    std::uint64_t total_self = 0;
    std::map<std::string, std::uint64_t> by_subsystem;
    for (const auto& span : spans) {
      total_self += span.self_ns;
      by_subsystem[span.leaf.substr(0, span.leaf.find(';'))] += span.self_ns;
    }
    writer.Key("prof");
    writer.BeginObject();
    writer.Key("engine_wall_ns").Double(wall_ns);
    writer.Key("engine_wall_s").Double(profiled.wall_s);
    writer.Key("engine_packets").UInt(profiled.packets);
    writer.Key("overhead_pct")
        .Double(100.0 * (profiled.wall_s - engine.wall_s) / engine.wall_s);
    writer.Key("coverage").Double(static_cast<double>(total_self) / wall_ns);
    writer.Key("subsystems");
    writer.BeginObject();
    for (const auto& [name, self_ns] : by_subsystem) {
      writer.Key(name).Double(static_cast<double>(self_ns) / wall_ns);
    }
    writer.EndObject();
    writer.Key("spans");
    obs::prof::WriteSpans(writer);
    writer.EndObject();
  }
  writer.EndObject();

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    out << writer.str() << '\n';
  }
  std::printf("%s\n", writer.str().c_str());
  return 0;
}
