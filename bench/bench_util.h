// Shared plumbing for the figure-reproduction benches: each binary runs
// one class of the §4.1 evaluation and prints the series of its paper
// figure plus the headline statistics the paper quotes in the text.
//
// Defaults keep a full `for b in build/bench/*` sweep in the minutes
// range; pass --full (or set MPQ_BENCH_FULL=1) for the paper's exact
// 253-scenario / 3-repetition design. All runs are deterministic.
#pragma once

#include <cstdio>

#include "harness/figures.h"

namespace mpq::harness {

/// High-BDP transfers at 0.1 Mbps need ~1600 s of simulated time for
/// 20 MB; give every run ample room so slow-but-working scenarios are
/// measured rather than truncated.
inline ClassEvalOptions FigureDefaults(int argc, char** argv) {
  ClassEvalOptions options = ParseBenchArgs(argc, argv);
  options.time_limit = 4000 * kSecond;
  options.base_options.time_limit = options.time_limit;
  return options;
}

inline void PrintHeader(const char* figure, const char* description,
                        const ClassEvalOptions& options) {
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf(
      "config: %zu scenarios x 2 initial paths, %d rep(s), %llu-byte "
      "transfer\n\n",
      options.scenario_count, options.repetitions,
      static_cast<unsigned long long>(options.transfer_size));
}

/// The ratio-CDF figures (3, 5, 8, 9).
inline void PrintRatioFigure(const std::vector<ScenarioOutcome>& outcomes) {
  const RatioSeries ratios = ComputeRatios(outcomes);
  PrintCdf("completion-time ratio TCP/QUIC", ratios.tcp_over_quic);
  std::printf("\n");
  PrintCdf("completion-time ratio MPTCP/MPQUIC", ratios.mptcp_over_mpquic);
  std::printf("\nheadline:\n");
  std::printf("  QUIC faster than TCP      in %5.1f%% of runs (median ratio %.2f)\n",
              100.0 * FractionAbove(ratios.tcp_over_quic, 1.0),
              Median(ratios.tcp_over_quic));
  std::printf("  MPQUIC faster than MPTCP  in %5.1f%% of runs (median ratio %.2f)\n",
              100.0 * FractionAbove(ratios.mptcp_over_mpquic, 1.0),
              Median(ratios.mptcp_over_mpquic));
}

/// The aggregation-benefit figures (4, 6, 7, 10).
inline void PrintBenefitFigure(const std::vector<ScenarioOutcome>& outcomes) {
  const BenefitSeries benefits = ComputeBenefits(outcomes);
  std::printf("experimental aggregation benefit (box-plot rows):\n");
  PrintSummaryRow("MPTCP  vs TCP,  best first", benefits.mptcp_best_first);
  PrintSummaryRow("MPTCP  vs TCP,  worst first", benefits.mptcp_worst_first);
  PrintSummaryRow("MPQUIC vs QUIC, best first", benefits.mpquic_best_first);
  PrintSummaryRow("MPQUIC vs QUIC, worst first", benefits.mpquic_worst_first);

  auto all_of = [](const std::vector<double>& a,
                   const std::vector<double>& b) {
    std::vector<double> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    return merged;
  };
  const auto mptcp =
      all_of(benefits.mptcp_best_first, benefits.mptcp_worst_first);
  const auto mpquic =
      all_of(benefits.mpquic_best_first, benefits.mpquic_worst_first);
  std::printf("\nheadline:\n");
  std::printf("  multipath beneficial (EBen > 0):  MPTCP %5.1f%%   MPQUIC %5.1f%%\n",
              100.0 * FractionAbove(mptcp, 0.0),
              100.0 * FractionAbove(mpquic, 0.0));
  std::printf("  median EBen:                      MPTCP %5.2f    MPQUIC %5.2f\n",
              Median(mptcp), Median(mpquic));
}

}  // namespace mpq::harness
