// Reproduces Figure 5 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 5",
              "GET 20 MB, low-BDP with random losses up to 2.5%. Paper: (MP)QUIC nearly always beats (MP)TCP (256 ack ranges vs 2-3 SACK blocks).",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpLosses, options);
  PrintRatioFigure(outcomes);
  return 0;
}
