// Ablation: the PATHS frame during handover (§4.3). With the frame, the
// client's failover packet tells the server the initial path died, so the
// server answers on the surviving path immediately; without it, the
// server first burns its own RTO on the dead path.
#include <algorithm>
#include <cstdio>

#include "harness/runner.h"

namespace {

struct SeriesStats {
  double worst_ms = 0;
  double steady_after_ms = 0;
  int unanswered = 0;
};

SeriesStats Analyze(const std::vector<mpq::harness::HandoverSample>& samples) {
  SeriesStats stats;
  mpq::Duration steady = 0;
  int after = 0;
  for (const auto& sample : samples) {
    if (!sample.answered) {
      ++stats.unanswered;
      continue;
    }
    stats.worst_ms = std::max(
        stats.worst_ms, static_cast<double>(sample.response_delay) / 1000.0);
    if (sample.sent_time > 5 * mpq::kSecond) {
      steady += sample.response_delay;
      ++after;
    }
  }
  if (after > 0) {
    stats.steady_after_ms = static_cast<double>(steady / after) / 1000.0;
  }
  return stats;
}

}  // namespace

int main() {
  using namespace mpq::harness;
  std::printf("=== Ablation: PATHS frame during handover (Fig. 11 setup) ===\n\n");
  std::printf("%-28s %-16s %-24s %s\n", "variant", "worst delay",
              "steady-state after", "unanswered");
  for (int seed = 1; seed <= 3; ++seed) {
    for (bool paths_frame : {true, false}) {
      HandoverOptions options;
      options.seed = seed;
      options.send_paths_frame = paths_frame;
      const SeriesStats stats = Analyze(RunQuicHandover(options));
      char label[64];
      std::snprintf(label, sizeof(label), "seed %d, PATHS frame %s", seed,
                    paths_frame ? "ON " : "OFF");
      std::printf("%-28s %9.1f ms   %9.1f ms            %d\n", label,
                  stats.worst_ms, stats.steady_after_ms, stats.unanswered);
    }
  }
  std::printf(
      "\nexpectation: with the PATHS frame the worst-case request delay "
      "stays near one client RTO; without it, responses sent on the dead "
      "path add server-side RTOs on top.\n");
  return 0;
}
