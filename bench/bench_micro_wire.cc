// Micro-benchmarks (google-benchmark) of the wire-format hot paths:
// varint codec, public-header encode/decode, STREAM and ACK frame
// encode/decode, full-packet assembly. These bound the per-packet CPU
// cost of the implementation (the paper notes QUIC's encryption/framing
// consumes CPU on their emulation platform, §4.1).
#include <benchmark/benchmark.h>

#include "common/buf.h"
#include "quic/wire.h"
#include "tcpsim/segment.h"

namespace {

using namespace mpq;
using namespace mpq::quic;

void BM_VarintEncode(benchmark::State& state) {
  const std::uint64_t value = 1ULL << state.range(0);
  for (auto _ : state) {
    BufWriter w(16);
    w.WriteVarint(value);
    benchmark::DoNotOptimize(w.data().data());
  }
}
BENCHMARK(BM_VarintEncode)->Arg(4)->Arg(12)->Arg(28)->Arg(40);

void BM_VarintDecode(benchmark::State& state) {
  BufWriter w(16);
  w.WriteVarint(1ULL << state.range(0));
  for (auto _ : state) {
    BufReader r(w.span());
    std::uint64_t out = 0;
    r.ReadVarint(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_VarintDecode)->Arg(4)->Arg(40);

void BM_HeaderEncodeDecode(benchmark::State& state) {
  PacketHeader header;
  header.cid = 0x1234567890ABCDEFULL;
  header.path_id = PathId{1};
  header.packet_number = PacketNumber{100000};
  header.multipath = true;
  for (auto _ : state) {
    BufWriter w(32);
    EncodeHeader(header, PacketNumber{99990}, w);
    BufReader r(w.span());
    ParsedHeader parsed;
    DecodeHeader(r, parsed);
    benchmark::DoNotOptimize(parsed.header.packet_number);
  }
}
BENCHMARK(BM_HeaderEncodeDecode);

void BM_StreamFrameEncode(benchmark::State& state) {
  StreamFrame frame;
  frame.stream_id = StreamId{3};
  frame.offset = ByteCount{1 << 20};
  frame.data.assign(state.range(0), 0xAB);
  const Frame f{frame};
  for (auto _ : state) {
    BufWriter w(1500);
    EncodeFrame(f, w);
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamFrameEncode)->Arg(100)->Arg(1300);

void BM_AckFrameEncodeDecode(benchmark::State& state) {
  AckFrame ack;
  ack.path_id = PathId{1};
  ack.ack_delay = 12345;
  PacketNumber pn{10 * state.range(0)};
  for (int i = 0; i < state.range(0); ++i) {
    ack.ranges.push_back({pn, pn + 3});
    pn -= 10;
  }
  const Frame f{ack};
  for (auto _ : state) {
    BufWriter w(4096);
    EncodeFrame(f, w);
    BufReader r(w.span());
    Frame out;
    DecodeFrame(r, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AckFrameEncodeDecode)->Arg(1)->Arg(32)->Arg(256);

void BM_PayloadDecodeMixed(benchmark::State& state) {
  BufWriter w(1500);
  EncodeFrame(Frame{AckFrame{PathId{0}, 100, {{PacketNumber{90}, PacketNumber{100}}}}}, w);
  EncodeFrame(Frame{WindowUpdateFrame{StreamId{0}, ByteCount{1 << 24}}}, w);
  StreamFrame stream;
  stream.stream_id = StreamId{3};
  stream.offset = ByteCount{777777};
  stream.data.assign(1200, 1);
  EncodeFrame(Frame{stream}, w);
  for (auto _ : state) {
    std::vector<Frame> frames;
    DecodePayload(w.span(), frames);
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_PayloadDecodeMixed);

void BM_TcpSegmentEncodeDecode(benchmark::State& state) {
  mpq::tcp::TcpSegment segment;
  segment.cid = 42;
  segment.flags = mpq::tcp::kFlagAck;
  segment.seq = 1 << 20;
  segment.ack = 1 << 19;
  segment.window = 16 << 20;
  segment.sacks = {{100, 1500}, {3000, 4400}, {8000, 9400}};
  segment.dss = mpq::tcp::DssMapping{1 << 21};
  segment.payload.assign(1400, 5);
  for (auto _ : state) {
    BufWriter w(1500);
    EncodeSegment(segment, w);
    BufReader r(w.span());
    mpq::tcp::TcpSegment out;
    DecodeSegment(r, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_TcpSegmentEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
