// Micro-benchmarks (google-benchmark) of the crypto substrate: ChaCha20
// keystream/XOR throughput, SipHash-2-4, the packet-protection seal/open
// path at MTU size, and the handshake key schedule.
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/siphash.h"

namespace {

using namespace mpq::crypto;
using mpq::PacketNumber;
using mpq::PathId;

ChaChaKey TestKey() {
  ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7);
  }
  return key;
}

void BM_ChaCha20Xor(benchmark::State& state) {
  const ChaChaKey key = TestKey();
  const ChaChaNonce nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<std::uint8_t> data(state.range(0), 0xAA);
  for (auto _ : state) {
    ChaCha20Xor(key, 1, nonce, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20Xor)->Arg(64)->Arg(1350)->Arg(16384);

void BM_SipHash24(benchmark::State& state) {
  SipHashKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> data(state.range(0), 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SipHash24(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SipHash24)->Arg(8)->Arg(64)->Arg(1350);

void BM_SealMtuPacket(benchmark::State& state) {
  PacketProtection protection(TestKey());
  std::vector<std::uint8_t> plaintext(1300, 0x42);
  const std::uint8_t aad[14] = {};
  PacketNumber pn{1};
  for (auto _ : state) {
    auto sealed = protection.Seal(PathId{1}, pn++, aad, plaintext);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(state.iterations() * 1300);
}
BENCHMARK(BM_SealMtuPacket);

void BM_OpenMtuPacket(benchmark::State& state) {
  PacketProtection protection(TestKey());
  std::vector<std::uint8_t> plaintext(1300, 0x42);
  const std::uint8_t aad[14] = {};
  const auto sealed = protection.Seal(PathId{1}, PacketNumber{99}, aad, plaintext);
  for (auto _ : state) {
    std::vector<std::uint8_t> out;
    const bool ok = protection.Open(PathId{1}, PacketNumber{99}, aad, sealed, out);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 1300);
}
BENCHMARK(BM_OpenMtuPacket);

void BM_SessionKeyDerivation(benchmark::State& state) {
  const std::uint8_t client_nonce[16] = {1};
  const std::uint8_t server_nonce[16] = {2};
  const std::uint8_t config[16] = {3};
  for (auto _ : state) {
    auto keys = DeriveSessionKeys(client_nonce, server_nonce, config);
    benchmark::DoNotOptimize(keys.client_to_server.data());
  }
}
BENCHMARK(BM_SessionKeyDerivation);

}  // namespace

BENCHMARK_MAIN();
