// Micro-benchmarks (google-benchmark) of the crypto substrate: ChaCha20
// keystream/XOR throughput, SipHash-2-4, the packet-protection seal/open
// path at MTU size (per SIMD dispatch level), the batched SealN path,
// and the handshake key schedule.
//
//   --selftest   print a deterministic digest of seal/open/ChaCha20
//                outputs over a length/path/pn sweep and exit. The
//                output is independent of the active SIMD level by
//                construction — ci.sh byte-compares it between the
//                default build and a -DMPQ_NO_SIMD=ON build, which is
//                the end-to-end "vector kernels are byte-identical to
//                scalar" gate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/cpu.h"
#include "crypto/siphash.h"

namespace {

using namespace mpq::crypto;
using mpq::PacketNumber;
using mpq::PathId;

ChaChaKey TestKey() {
  ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7);
  }
  return key;
}

// --- selftest --------------------------------------------------------------

/// Deterministic digests over a sweep of lengths (crossing every SIMD
/// width boundary: 4x64=256 for SSE2, 8x64=512 for AVX2, plus partial
/// blocks and odd tails), paths (including >255, which exercises the
/// full 32-bit path id in the nonce) and packet numbers.
int RunSelftest() {
  const std::size_t kLengths[] = {0,   1,   8,    15,   16,   63,  64,
                                  65,  127, 128,  129,  255,  256, 257,
                                  500, 511, 512,  513,  1023, 1024, 1025,
                                  1350, 2048, 4096};
  SipHashKey digest_key{};
  for (std::size_t i = 0; i < digest_key.size(); ++i) {
    digest_key[i] = static_cast<std::uint8_t>(0xC5 ^ i);
  }
  const PacketProtection protection(TestKey());
  std::printf("MPQ_CRYPTO_SELFTEST v1\n");
  for (const std::size_t len : kLengths) {
    std::vector<std::uint8_t> plaintext(len);
    for (std::size_t i = 0; i < len; ++i) {
      plaintext[i] = static_cast<std::uint8_t>(i * 31 + len);
    }
    std::uint8_t aad[14];
    for (std::size_t i = 0; i < sizeof(aad); ++i) {
      aad[i] = static_cast<std::uint8_t>(i + len);
    }
    const PathId path{static_cast<std::uint32_t>((len % 5) * 67 + 1)};
    const PacketNumber pn{len * 13 + 1};

    // Raw cipher digest.
    std::vector<std::uint8_t> stream = plaintext;
    const ChaChaNonce nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    ChaCha20Xor(TestKey(), 1, nonce, stream);
    const std::uint64_t cipher_digest = SipHash24(digest_key, stream);

    // Seal digest + open round trip.
    const auto sealed = protection.Seal(path, pn, aad, plaintext);
    const std::uint64_t seal_digest = SipHash24(digest_key, sealed);
    std::vector<std::uint8_t> opened;
    if (!protection.Open(path, pn, aad, sealed, opened) ||
        opened != plaintext) {
      std::printf("len=%zu OPEN ROUNDTRIP FAILED\n", len);
      return 1;
    }
    std::printf("len=%zu chacha=%016llx seal=%016llx\n", len,
                static_cast<unsigned long long>(cipher_digest),
                static_cast<unsigned long long>(seal_digest));
  }
  // Batched seal digest: 32 MTU packets through one SealN call.
  {
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<SealRequest> requests;
    static std::uint8_t aad[14] = {9, 8, 7, 6, 5, 4, 3, 2, 1};
    for (std::size_t i = 0; i < 32; ++i) {
      bufs.emplace_back(1300 + kAeadTagSize,
                        static_cast<std::uint8_t>(i * 11 + 1));
      requests.push_back(SealRequest{PathId{static_cast<std::uint32_t>(i)},
                                     PacketNumber{i + 1}, aad, bufs.back()});
    }
    protection.SealN(requests);
    std::uint64_t digest = 0;
    for (const auto& buf : bufs) digest ^= SipHash24(digest_key, buf);
    std::printf("sealn32=%016llx\n", static_cast<unsigned long long>(digest));
  }
  // The level goes to stderr so stdout stays comparable across builds.
  std::fprintf(stderr, "active SIMD level: %s\n",
               SimdLevelName(ActiveSimdLevel()));
  return 0;
}

// --- benchmarks ------------------------------------------------------------

void BM_ChaCha20Xor(benchmark::State& state) {
  const ChaChaKey key = TestKey();
  const ChaChaNonce nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<std::uint8_t> data(state.range(0), 0xAA);
  for (auto _ : state) {
    ChaCha20Xor(key, 1, nonce, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20Xor)->Arg(64)->Arg(1350)->Arg(16384);

void BM_SipHash24(benchmark::State& state) {
  SipHashKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> data(state.range(0), 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SipHash24(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SipHash24)->Arg(8)->Arg(64)->Arg(1350);

/// Per-dispatch-level seal: range(0) is the SimdLevel to force
/// (0=scalar, 1=SSE2, 2=AVX2); levels above the machine's maximum are
/// skipped. Restores the default level afterwards.
void BM_SealMtuPacketLevel(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  if (level > MaxSimdLevel()) {
    state.SkipWithError("SIMD level unavailable on this machine/build");
    return;
  }
  ForceSimdLevel(level);
  state.SetLabel(SimdLevelName(level));
  PacketProtection protection(TestKey());
  std::vector<std::uint8_t> buf(1300 + kAeadTagSize, 0x42);
  const std::uint8_t aad[14] = {};
  PacketNumber pn{1};
  for (auto _ : state) {
    protection.SealInPlace(PathId{1}, pn++, aad, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1300);
  ForceSimdLevel(MaxSimdLevel());
}
BENCHMARK(BM_SealMtuPacketLevel)->Arg(0)->Arg(1)->Arg(2);

void BM_OpenMtuPacketLevel(benchmark::State& state) {
  const auto level = static_cast<SimdLevel>(state.range(0));
  if (level > MaxSimdLevel()) {
    state.SkipWithError("SIMD level unavailable on this machine/build");
    return;
  }
  ForceSimdLevel(level);
  state.SetLabel(SimdLevelName(level));
  PacketProtection protection(TestKey());
  std::vector<std::uint8_t> plaintext(1300, 0x42);
  const std::uint8_t aad[14] = {};
  const auto sealed =
      protection.Seal(PathId{1}, PacketNumber{99}, aad, plaintext);
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.assign(sealed.begin(), sealed.end());
    std::size_t plaintext_len = 0;
    const bool ok = protection.OpenInPlace(PathId{1}, PacketNumber{99}, aad,
                                           buf, plaintext_len);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1300);
  ForceSimdLevel(MaxSimdLevel());
}
BENCHMARK(BM_OpenMtuPacketLevel)->Arg(0)->Arg(1)->Arg(2);

/// The burst path: 32 MTU packets per SealN call (what a retransmission
/// storm or a saturated send loop hands the crypto layer).
void BM_SealBurst32(benchmark::State& state) {
  PacketProtection protection(TestKey());
  std::vector<std::vector<std::uint8_t>> bufs(32);
  for (auto& buf : bufs) buf.assign(1300 + kAeadTagSize, 0x42);
  static const std::uint8_t aad[14] = {};
  std::vector<SealRequest> requests;
  std::uint64_t pn = 1;
  for (auto _ : state) {
    requests.clear();
    for (auto& buf : bufs) {
      requests.push_back(
          SealRequest{PathId{1}, PacketNumber{pn++}, aad, buf});
    }
    protection.SealN(requests);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetBytesProcessed(state.iterations() * 32 * 1300);
}
BENCHMARK(BM_SealBurst32);

void BM_SessionKeyDerivation(benchmark::State& state) {
  const std::uint8_t client_nonce[16] = {1};
  const std::uint8_t server_nonce[16] = {2};
  const std::uint8_t config[16] = {3};
  for (auto _ : state) {
    auto keys = DeriveSessionKeys(client_nonce, server_nonce, config);
    benchmark::DoNotOptimize(keys.client_to_server.data());
  }
}
BENCHMARK(BM_SessionKeyDerivation);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) return RunSelftest();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
