// Reproduces Figure 6 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 6",
              "GET 20 MB, low-BDP with random losses. Paper: multipath still beneficial to QUIC, with larger variance.",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpLosses, options);
  PrintBenefitFigure(outcomes);
  return 0;
}
