// Micro-benchmarks (google-benchmark) of the engine hot paths outside the
// codecs: simulator event throughput, received-range tracking, stream
// reassembly, scheduler decisions, and WSP design generation.
#include <benchmark/benchmark.h>

#include <memory>

#include "cc/newreno.h"
#include "expdesign/wsp.h"
#include "obs/prof.h"
#include "quic/ack_tracker.h"
#include "quic/scheduler.h"
#include "quic/streams.h"
#include "sim/simulator.h"

namespace {

using namespace mpq;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  // Throughput of schedule+dispatch for a batch of timers.
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(i % 977, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  // Half of all events get cancelled — the stale-heap-entry path.
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::Simulator::EventId> ids;
    ids.reserve(state.range(0));
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(sim.Schedule(i % 977, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorCancelHeavy)->Arg(10000);

void BM_ReceivedTrackerInOrder(benchmark::State& state) {
  for (auto _ : state) {
    quic::ReceivedPacketTracker tracker;
    for (PacketNumber pn = PacketNumber{1}; pn <= 10000; ++pn) {
      tracker.OnPacketReceived(pn, static_cast<TimePoint>(pn));
    }
    benchmark::DoNotOptimize(tracker.BuildAckRanges());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ReceivedTrackerInOrder);

void BM_ReceivedTrackerLossy(benchmark::State& state) {
  // Every 10th packet missing: ~1000 live ranges, capped ACK at 256.
  for (auto _ : state) {
    quic::ReceivedPacketTracker tracker;
    for (PacketNumber pn = PacketNumber{1}; pn <= 10000; ++pn) {
      if (pn % 10 == 0) continue;
      tracker.OnPacketReceived(pn, static_cast<TimePoint>(pn));
    }
    benchmark::DoNotOptimize(tracker.BuildAckRanges());
  }
  state.SetItemsProcessed(state.iterations() * 9000);
}
BENCHMARK(BM_ReceivedTrackerLossy);

void BM_RecvStreamReassemblyReversed(benchmark::State& state) {
  // Worst-case arrival order: last chunk first.
  constexpr int kChunks = 512;
  for (auto _ : state) {
    quic::RecvStream stream(StreamId{3});
    ByteCount delivered{};
    stream.SetSink([&delivered](ByteCount, std::span<const std::uint8_t> d,
                                bool) { delivered += d.size(); });
    quic::StreamFrame frame;
    frame.stream_id = StreamId{3};
    frame.data.assign(1300, 7);
    for (int i = kChunks - 1; i >= 0; --i) {
      frame.offset = static_cast<ByteCount>(i) * 1300;
      stream.OnStreamFrame(frame);
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * kChunks * 1300);
}
BENCHMARK(BM_RecvStreamReassemblyReversed);

void BM_SchedulerSelect(benchmark::State& state) {
  // Per-packet path-selection cost with 4 measured paths.
  std::vector<std::unique_ptr<quic::Path>> paths;
  std::vector<quic::Path*> pointers;
  for (int i = 0; i < 4; ++i) {
    paths.push_back(std::make_unique<quic::Path>(
        static_cast<PathId>(i), sim::Address{1, 0}, sim::Address{2, 0},
        std::make_unique<cc::NewReno>()));
    paths.back()->rtt().AddSample((10 + i * 15) * kMillisecond, 0);
    pointers.push_back(paths.back().get());
  }
  quic::LowestRttScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.SelectPath(pointers, ByteCount{1350}));
  }
}
BENCHMARK(BM_SchedulerSelect);

void BM_WspDesign253(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(expdesign::WspDesign(8, 253, 42));
  }
}
BENCHMARK(BM_WspDesign253);

void BM_ProfScopeDisabled(benchmark::State& state) {
  // Cost every instrumented call pays in a default build: MPQ_PROF is
  // compiled in but recording is off — one relaxed load and a branch.
  // Everything else in this binary runs under exactly this regime.
  obs::prof::SetEnabled(false);
  for (auto _ : state) {
    MPQ_PROF_SCOPE("bench/disabled");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeDisabled);

void BM_ProfScopeEnabled(benchmark::State& state) {
  // Cost while actively profiling: enter (TLS + child lookup), two
  // timestamp reads, histogram record on exit.
  obs::prof::SetEnabled(true);
  for (auto _ : state) {
    MPQ_PROF_SCOPE("bench/enabled");
  }
  obs::prof::SetEnabled(false);
  obs::prof::Reset();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeEnabled);

}  // namespace

BENCHMARK_MAIN();
