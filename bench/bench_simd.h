// The "simd" block shared by bench_perf_baseline and bench_many_conn
// (docs/PERFORMANCE.md, "Reading BENCH_PR10.json"): the dispatch level
// the run used plus per-level AEAD seal/open micro costs at MTU size,
// so an engine regression can be attributed to kernel selection vs.
// datapath drift at a glance.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "crypto/aead.h"
#include "crypto/cpu.h"
#include "obs/json.h"

namespace mpq::bench {

/// Emit `"simd": {active_level, levels: {<name>: {aead_seal_ns,
/// aead_open_ns}, ...}}` into `writer` (which must be inside an open
/// object). Forces each compiled-and-supported level in turn and
/// restores MaxSimdLevel() before returning — call it outside any timed
/// leg.
inline void WriteSimdBlock(obs::JsonWriter& writer) {
  using Clock = std::chrono::steady_clock;
  crypto::ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7);
  }
  const crypto::PacketProtection protection(key);
  const std::vector<std::uint8_t> plaintext(1300, 0x42);
  const std::uint8_t aad[14] = {};
  constexpr std::size_t kIters = 50000;

  auto median = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  auto time_runs = [&](auto&& body) {
    std::vector<double> runs;
    for (int run = 0; run < 3; ++run) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kIters; ++i) body(i);
      runs.push_back(std::chrono::duration<double>(Clock::now() - t0).count() *
                     1e9 / kIters);
    }
    return median(std::move(runs));
  };

  writer.Key("simd");
  writer.BeginObject();
  writer.Key("active_level")
      .String(crypto::SimdLevelName(crypto::MaxSimdLevel()));
  writer.Key("levels");
  writer.BeginObject();
  for (int l = 0; l <= static_cast<int>(crypto::MaxSimdLevel()); ++l) {
    const auto level = static_cast<crypto::SimdLevel>(l);
    crypto::ForceSimdLevel(level);
    std::vector<std::uint8_t> buf(plaintext.size() + crypto::kAeadTagSize);
    const double seal_ns = time_runs([&](std::size_t i) {
      std::copy(plaintext.begin(), plaintext.end(), buf.begin());
      protection.SealInPlace(PathId{1}, PacketNumber{i + 1}, aad, buf);
    });
    std::copy(plaintext.begin(), plaintext.end(), buf.begin());
    protection.SealInPlace(PathId{1}, PacketNumber{99}, aad, buf);
    const std::vector<std::uint8_t> sealed = buf;
    const double open_ns = time_runs([&](std::size_t) {
      std::copy(sealed.begin(), sealed.end(), buf.begin());
      std::size_t plaintext_len = 0;
      if (!protection.OpenInPlace(PathId{1}, PacketNumber{99}, aad, buf,
                                  plaintext_len)) {
        std::abort();
      }
    });
    writer.Key(crypto::SimdLevelName(level));
    writer.BeginObject();
    writer.Key("aead_seal_ns").Double(seal_ns);
    writer.Key("aead_open_ns").Double(open_ns);
    writer.EndObject();
  }
  crypto::ForceSimdLevel(crypto::MaxSimdLevel());
  writer.EndObject();
  writer.EndObject();
}

}  // namespace mpq::bench
