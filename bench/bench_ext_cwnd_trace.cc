// Diagnostic: congestion-window evolution per path (via the tracer API).
//
// Runs an MPQUIC 20 MB download over asymmetric paths with a
// TimeSeriesTracer attached to the sending (server) connection, for both
// OLIA (the paper's choice) and uncoupled CUBIC, and prints downsampled
// (time, cwnd, srtt) rows per path plus loss events. This is the standard
// picture papers draw when explaining coupled congestion control: OLIA
// holds the slow path's window down while CUBIC lets both run free.
#include <cstdio>
#include <memory>
#include <string>

#include "common/source.h"
#include "quic/endpoint.h"
#include "quic/trace.h"
#include "sim/topology.h"

namespace {

using namespace mpq;

void RunAndPrint(cc::Algorithm algorithm, const char* label) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(31337));
  std::array<sim::PathParams, 2> paths;
  paths[0].capacity_mbps = 20;
  paths[0].rtt = 20 * kMillisecond;
  paths[0].max_queue_delay = 40 * kMillisecond;
  paths[1].capacity_mbps = 6;
  paths[1].rtt = 60 * kMillisecond;
  paths[1].max_queue_delay = 80 * kMillisecond;
  auto topo = sim::BuildTwoPathTopology(net, paths);

  quic::ConnectionConfig config;
  config.multipath = true;
  config.congestion = algorithm;

  quic::TimeSeriesTracer tracer;
  quic::ServerEndpoint server(sim, net,
                              {topo.server_addr[0], topo.server_addr[1]},
                              config, 1);
  server.SetAcceptHandler([&tracer](quic::Connection& conn) {
    conn.SetTracer(&tracer);
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });

  quic::ClientEndpoint client(sim, net,
                              {topo.client_addr[0], topo.client_addr[1]},
                              config, 2);
  bool finished = false;
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
        if (fin) finished = true;
      });
  client.connection().SetEstablishedHandler([&] {
    const std::string request = "GET 20971520";
    client.connection().SendOnStream(
        StreamId{3}, std::make_unique<BufferSource>(
               std::vector<std::uint8_t>(request.begin(), request.end())));
  });
  client.Connect(topo.server_addr[0]);
  while (!finished && sim.RunOne(120 * kSecond)) {
  }

  std::printf("# %s — completed in %.2f s; rows: time_s path cwnd_kB "
              "srtt_ms (downsampled)\n",
              label, DurationToSeconds(sim.now()));
  TimePoint next_print[2] = {0, 0};
  for (const auto& sample : tracer.samples()) {
    if (sample.path > 1) continue;
    if (sample.time < next_print[sample.path.value()]) continue;
    next_print[sample.path.value()] = sample.time + 250 * kMillisecond;
    std::printf("%7.3f %d %7.1f %6.1f\n", DurationToSeconds(sample.time),
                sample.path.value(), static_cast<double>(sample.cwnd) / 1024.0,
                static_cast<double>(sample.srtt) / 1000.0);
  }
  std::size_t losses[2] = {0, 0};
  PacketNumber last_lost_pn[2] = {PacketNumber{0}, PacketNumber{0}};
  for (const auto& loss : tracer.losses()) {
    if (loss.path <= 1) {
      ++losses[loss.path.value()];
      last_lost_pn[loss.path.value()] = loss.pn;
    }
  }
  std::printf("# losses: path0 %zu (last pn %llu), path1 %zu (last pn "
              "%llu)\n\n",
              losses[0], static_cast<unsigned long long>(last_lost_pn[0]),
              losses[1], static_cast<unsigned long long>(last_lost_pn[1]));
}

}  // namespace

int main() {
  std::printf("=== Diagnostic: per-path congestion window evolution ===\n");
  std::printf("20 MB MPQUIC download; path0 20 Mbps/20 ms, path1 6 Mbps/60 "
              "ms.\n\n");
  RunAndPrint(mpq::cc::Algorithm::kOlia, "OLIA (coupled)");
  RunAndPrint(mpq::cc::Algorithm::kCubic, "CUBIC per path (uncoupled)");
  return 0;
}
