// Ablation: WINDOW_UPDATE on all paths vs data path only (§3 "Packet
// Scheduling": "the scheduler ensures proper delivery of the
// WINDOW_UPDATE frames by sending them on all paths").
//
// The effect shows where receive-window pressure is highest: lossy and
// high-BDP scenarios, where losing a WINDOW_UPDATE on one path can stall
// the whole connection for an RTO.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq;
  using namespace mpq::harness;
  ClassEvalOptions base = FigureDefaults(argc, argv);
  base.scenario_count = std::min<std::size_t>(base.scenario_count, 40);

  std::printf("=== Ablation: WINDOW_UPDATE on all paths (MPQUIC) ===\n\n");
  for (auto klass : {expdesign::ScenarioClass::kLowBdpLosses,
                     expdesign::ScenarioClass::kHighBdpLosses}) {
    const auto scenarios = expdesign::GenerateScenarios(
        klass, base.scenario_count, base.seed);
    std::printf("%s:\n", expdesign::ToString(klass).c_str());
    for (bool on_all_paths : {true, false}) {
      std::vector<double> times;
      int completed = 0;
      for (const auto& scenario : scenarios) {
        TransferOptions options = base.base_options;
        options.transfer_size = base.transfer_size;
        options.time_limit = base.time_limit;
        options.seed = base.seed + 37ULL * scenario.index;
        options.quic_window_update_on_all_paths = on_all_paths;
        const TransferResult result =
            RunTransfer(Protocol::kMpquic, scenario.paths, options);
        times.push_back(DurationToSeconds(result.completion_time));
        completed += result.completed;
      }
      std::printf("  window updates on %-10s median %8.2f s  p95 %8.2f s  "
                  "completed %d/%zu\n",
                  on_all_paths ? "ALL paths:" : "ONE path:", Median(times),
                  Percentile(times, 95.0), completed, scenarios.size());
    }
    std::printf("\n");
  }
  std::printf(
      "expectation: duplication trims the tail (p95) in lossy classes by "
      "avoiding RTO-priced WINDOW_UPDATE losses.\n");
  return 0;
}
