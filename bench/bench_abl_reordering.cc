// Ablation: packet reordering tolerance.
//
// Not a paper figure, but it probes the same machinery §2 praises: QUIC's
// monotonic packet numbers make reordering unambiguous, while TCP's
// dupack counting misreads reordering as loss. We add uniform per-packet
// delay jitter (0–30 ms) to both paths and watch completion times: every
// spurious "loss" costs a needless retransmission plus a congestion-
// window cut.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq;
  using namespace mpq::harness;
  ClassEvalOptions base = FigureDefaults(argc, argv);
  const std::size_t scenario_count =
      std::min<std::size_t>(base.scenario_count, 24);

  const auto scenarios = expdesign::GenerateScenarios(
      expdesign::ScenarioClass::kLowBdpNoLoss, scenario_count, base.seed);

  std::printf("=== Ablation: reordering (uniform per-packet jitter) ===\n\n");
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "jitter", "TCP med[s]",
              "QUIC med[s]", "MPTCP[s]", "MPQUIC[s]");
  for (Duration jitter :
       {Duration{0}, 2 * kMillisecond, 10 * kMillisecond,
        30 * kMillisecond}) {
    double medians[4] = {};
    int column = 0;
    for (Protocol protocol : {Protocol::kTcp, Protocol::kQuic,
                              Protocol::kMptcp, Protocol::kMpquic}) {
      std::vector<double> times;
      for (const auto& scenario : scenarios) {
        auto paths = scenario.paths;
        for (auto& path : paths) path.jitter = jitter;
        TransferOptions options = base.base_options;
        options.transfer_size = base.transfer_size;
        options.time_limit = base.time_limit;
        options.seed = base.seed + 47ULL * scenario.index;
        times.push_back(DurationToSeconds(
            RunTransfer(protocol, paths, options).completion_time));
      }
      medians[column++] = Median(times);
    }
    std::printf("%6lld ms  %-12.2f %-12.2f %-12.2f %-12.2f\n",
                static_cast<long long>(jitter / kMillisecond), medians[0],
                medians[1], medians[2], medians[3]);
  }
  std::printf(
      "\nfinding: both families degrade steeply — spurious loss signals "
      "cut the congestion window. QUIC degrades *more* at extreme jitter "
      "because it runs two detectors (packet threshold AND the 9/8-RTT "
      "time threshold) with era-accurate fixed parameters; adaptive "
      "reordering windows (RACK-style) arrived later for exactly this "
      "reason. The multipath variants fare best: per-path packet-number "
      "spaces mean cross-path reordering is invisible to loss detection — "
      "the §3 design choice, earning its keep.\n");
  return 0;
}
