// Reproduces Figure 10 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  options.transfer_size = mpq::ByteCount{256 * 1024};
  PrintHeader("Figure 10",
              "GET 256 KB, low-BDP no random loss. Paper: multipath is NOT useful for short transfers (handshake dominates).",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpNoLoss, options);
  PrintBenefitFigure(outcomes);
  return 0;
}
