// Ablation: MPQUIC packet schedulers (§3 "Packet Scheduling").
//
// The paper's design discussion motivates the default scheduler (lowest
// RTT + duplicate-on-unknown-path) against two alternatives it rejects:
// ping-first (probe a new path, wait an RTT) and round-robin (fragile
// with heterogeneous delays). A fully redundant scheduler is included as
// the upper bound on duplication overhead. This bench quantifies the
// trade-offs over the low-BDP design for both long and short transfers.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq;
  using namespace mpq::harness;
  ClassEvalOptions base = FigureDefaults(argc, argv);
  base.scenario_count = std::min<std::size_t>(base.scenario_count, 40);

  struct Variant {
    const char* name;
    quic::SchedulerType type;
  };
  const Variant variants[] = {
      {"lowest-rtt + duplicate (paper)", quic::SchedulerType::kLowestRtt},
      {"ping-first", quic::SchedulerType::kPingFirst},
      {"round-robin", quic::SchedulerType::kRoundRobin},
      {"redundant (duplicate all)", quic::SchedulerType::kRedundant},
  };

  std::printf("=== Ablation: MPQUIC scheduler (low-BDP no-loss) ===\n\n");
  for (ByteCount size : {ByteCount{20} * 1024 * 1024, ByteCount{256} * 1024}) {
    std::printf("transfer %llu bytes:\n",
                static_cast<unsigned long long>(size));
    const auto scenarios = expdesign::GenerateScenarios(
        expdesign::ScenarioClass::kLowBdpNoLoss, base.scenario_count,
        base.seed);
    for (const Variant& variant : variants) {
      std::vector<double> times;
      std::vector<double> goodputs;
      for (const auto& scenario : scenarios) {
        TransferOptions options = base.base_options;
        options.transfer_size = size;
        options.time_limit = base.time_limit;
        options.seed = base.seed + 31ULL * scenario.index;
        options.quic_scheduler = variant.type;
        const TransferResult result =
            RunTransfer(Protocol::kMpquic, scenario.paths, options);
        times.push_back(DurationToSeconds(result.completion_time));
        goodputs.push_back(result.goodput_mbps);
      }
      std::printf("  %-32s median %7.2f s   mean goodput %6.2f Mbps\n",
                  variant.name, Median(times), Mean(goodputs));
    }
    std::printf("\n");
  }
  std::printf(
      "expectation: the paper's scheduler wins or ties; round-robin "
      "suffers with heterogeneous paths; redundant wastes capacity on "
      "long transfers but is competitive on short ones.\n");
  return 0;
}
