// Reproduces Figure 3 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 3",
              "GET 20 MB, low-BDP no random loss. Paper: single-path TCP ~ QUIC; MPQUIC beats MPTCP in ~89% of scenarios.",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpNoLoss, options);
  PrintRatioFigure(outcomes);
  return 0;
}
