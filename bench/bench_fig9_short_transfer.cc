// Reproduces Figure 9 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  options.transfer_size = mpq::ByteCount{256 * 1024};
  PrintHeader("Figure 9",
              "GET 256 KB, low-BDP no random loss. Paper: QUIC wins via its 1-RTT handshake (vs 3 RTTs for TCP+TLS 1.2).",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpNoLoss, options);
  PrintRatioFigure(outcomes);
  return 0;
}
