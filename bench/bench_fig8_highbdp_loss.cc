// Reproduces Figure 8 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 8",
              "GET 20 MB, high-BDP with random losses. Paper: (MP)QUIC outperforms (MP)TCP.",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kHighBdpLosses, options);
  PrintRatioFigure(outcomes);
  return 0;
}
