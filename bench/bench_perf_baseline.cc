// Performance snapshot for the zero-allocation datapath + parallel
// harness work: micro costs of the per-packet hot paths (wire assembly,
// AEAD seal/open), whole-engine simulation throughput, and the WSP sweep
// wall clock at --jobs 1 vs --jobs N. Emits one JSON document (stdout,
// or --out FILE) with the pre-change numbers embedded for comparison;
// the committed BENCH_PR2.json is this program's output. Regenerate with
//   ./build/bench/bench_perf_baseline --out BENCH_PR2.json
// (see docs/PERFORMANCE.md; absolute numbers are machine-dependent).
//
//   --prof   additionally run one profiled engine transfer (MPQ_PROF
//            scopes enabled) and embed the subsystem time breakdown +
//            span dump under "prof" — the committed BENCH_PR6.json is
//            the --prof output; render it with tools/mpq_prof
//   --quick  skip the WSP sweep legs (the ci.sh perf gate only needs
//            the engine number)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_simd.h"
#include "common/source.h"
#include "crypto/aead.h"
#include "harness/figures.h"
#include "harness/parallel.h"
#include "obs/json.h"
#include "obs/prof.h"
#include "quic/endpoint.h"
#include "quic/wire.h"
#include "sim/net.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace {

using namespace mpq;
using Clock = std::chrono::steady_clock;

// Baseline captured on this benchmark's first version, built at the
// commit preceding the datapath overhaul (same machine class as the
// "after" numbers committed alongside; 1 core, so no sweep speedup).
constexpr double kBaselineWireNs = 60.3;
constexpr double kBaselineSealNs = 4435.4;
constexpr double kBaselineOpenNs = 4369.0;
constexpr double kBaselineEngineWallS = 0.111;
constexpr double kBaselineEnginePacketsPerSec = 86030.0;
constexpr double kBaselineSweepSerialWallS = 1.116;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double WirePacketAssembleNs() {
  quic::StreamFrame frame;
  frame.stream_id = StreamId{3};
  frame.offset = ByteCount{1 << 20};
  frame.data.assign(1300, 0xAB);
  const quic::Frame f{frame};
  quic::PacketHeader header;
  header.cid = 0x1234567890ABCDEFULL;
  header.path_id = PathId{1};
  header.packet_number = PacketNumber{100000};
  header.multipath = true;
  constexpr std::size_t kIters = 200000;
  std::vector<double> runs;
  for (int run = 0; run < 5; ++run) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i) {
      BufWriter w(1350);
      EncodeHeader(header, PacketNumber{99990}, w);
      EncodeFrame(f, w);
      if (w.size() < 1300) std::abort();
    }
    runs.push_back(Seconds(t0, Clock::now()) * 1e9 / kIters);
  }
  return Median(std::move(runs));
}

struct AeadCost {
  double seal_ns = 0;
  double open_ns = 0;
};

AeadCost AeadMtuCost() {
  crypto::ChaChaKey key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7);
  }
  crypto::PacketProtection protection(key);
  const std::vector<std::uint8_t> plaintext(1300, 0x42);
  const std::uint8_t aad[14] = {};
  constexpr std::size_t kIters = 100000;
  AeadCost cost;
  {
    std::vector<double> runs;
    for (int run = 0; run < 5; ++run) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kIters; ++i) {
        const auto sealed = protection.Seal(PathId{1}, PacketNumber{i + 1}, aad, plaintext);
        if (sealed.size() != 1300 + crypto::kAeadTagSize) std::abort();
      }
      runs.push_back(Seconds(t0, Clock::now()) * 1e9 / kIters);
    }
    cost.seal_ns = Median(std::move(runs));
  }
  {
    auto sealed = protection.Seal(PathId{1}, PacketNumber{99}, aad, plaintext);
    std::vector<std::uint8_t> scratch;
    std::vector<double> runs;
    for (int run = 0; run < 5; ++run) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kIters; ++i) {
        if (!protection.Open(PathId{1}, PacketNumber{99}, aad, sealed, scratch)) std::abort();
      }
      runs.push_back(Seconds(t0, Clock::now()) * 1e9 / kIters);
    }
    cost.open_ns = Median(std::move(runs));
  }
  return cost;
}

struct EngineThroughput {
  double wall_s = 0;        // median across reps
  double total_wall_s = 0;  // sum across reps (profiler spans accumulate)
  std::uint64_t packets = 0;
};

/// One full 8 MB MPQUIC transfer over two 20 Mbps paths: exercises the
/// whole datapath (scheduler, CC, crypto, wire, reassembly) and reports
/// client packets processed per wall-clock second.
EngineThroughput EngineTransfer(int reps = 5) {
  constexpr ByteCount kSize{8 * 1024 * 1024};
  EngineThroughput out;
  std::vector<double> walls;
  for (int run = 0; run < reps; ++run) {
    sim::Simulator sim;
    sim::Network net(sim, Rng(12345));
    std::array<sim::PathParams, 2> params;
    params[0].capacity_mbps = 20;
    params[1].capacity_mbps = 20;
    params[0].rtt = 20 * kMillisecond;
    params[1].rtt = 40 * kMillisecond;
    for (auto& p : params) p.max_queue_delay = 60 * kMillisecond;
    auto topo = sim::BuildTwoPathTopology(net, params);

    quic::ConnectionConfig config;
    config.multipath = true;
    config.congestion = cc::Algorithm::kOlia;

    std::vector<sim::Address> server_locals(topo.server_addr.begin(),
                                            topo.server_addr.end());
    quic::ServerEndpoint server(sim, net, server_locals, config, 7);
    server.SetAcceptHandler([](quic::Connection& conn) {
      auto request = std::make_shared<std::string>();
      conn.SetStreamDataHandler(
          [&conn, request](StreamId id, ByteCount,
                           std::span<const std::uint8_t> data, bool fin) {
            request->append(data.begin(), data.end());
            if (fin && id == 3) {
              const ByteCount size = ByteCount{std::stoull(request->substr(4))};
              conn.SendOnStream(StreamId{3}, std::make_unique<PatternSource>(3, size));
            }
          });
    });
    std::vector<sim::Address> client_locals(topo.client_addr.begin(),
                                            topo.client_addr.end());
    quic::ClientEndpoint client(sim, net, client_locals, config, 8);
    ByteCount received{};
    bool finished = false;
    client.connection().SetStreamDataHandler(
        [&](StreamId, ByteCount, std::span<const std::uint8_t> data,
            bool fin) {
          received += data.size();
          if (fin) finished = true;
        });
    client.connection().SetEstablishedHandler([&] {
      const std::string request = "GET " + std::to_string(kSize.value());
      client.connection().SendOnStream(
          StreamId{3}, std::make_unique<BufferSource>(std::vector<std::uint8_t>(
                 request.begin(), request.end())));
    });
    const auto t0 = Clock::now();
    client.Connect(topo.server_addr[0]);
    while (!finished && sim.RunOne(600 * kSecond)) {
    }
    walls.push_back(Seconds(t0, Clock::now()));
    if (!finished || received != kSize) std::abort();
    out.packets = client.connection().stats().packets_sent +
                  client.connection().stats().packets_received;
  }
  for (const double w : walls) out.total_wall_s += w;
  out.wall_s = Median(std::move(walls));
  return out;
}

/// Reduced WSP sweep (6 scenarios x 2 paths x 4 protocols x 2 reps).
double SweepWallSeconds(int jobs) {
  harness::ClassEvalOptions options;
  options.scenario_count = 6;
  options.repetitions = 2;
  options.transfer_size = ByteCount{1024 * 1024};
  options.progress = false;
  options.time_limit = 4000 * kSecond;
  options.base_options.time_limit = options.time_limit;
  options.jobs = jobs;
  std::vector<double> runs;
  for (int run = 0; run < 3; ++run) {
    const auto t0 = Clock::now();
    const auto outcomes = harness::EvaluateClass(
        expdesign::ScenarioClass::kLowBdpNoLoss, options);
    runs.push_back(Seconds(t0, Clock::now()));
    if (outcomes.size() != options.scenario_count) std::abort();
  }
  return Median(std::move(runs));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool prof = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      prof = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  const double wire_ns = WirePacketAssembleNs();
  const AeadCost aead = AeadMtuCost();
  const EngineThroughput engine = EngineTransfer();
  const int jobs = harness::DefaultJobs();
  const double sweep_serial_s = quick ? 0.0 : SweepWallSeconds(1);
  const double sweep_parallel_s =
      quick ? 0.0
            : (jobs > 1 ? SweepWallSeconds(jobs) : sweep_serial_s);
  const double engine_pps =
      static_cast<double>(engine.packets) / engine.wall_s;

  // Profiled leg: a separate single engine transfer with the scopes
  // recording, so the "current" engine numbers above stay comparable
  // across PRs (profiling off) while the dump and the measured overhead
  // land under "prof".
  EngineThroughput profiled;
  std::vector<obs::prof::SpanStats> spans;
  if (prof) {
    if (!obs::prof::kCompiledIn) {
      std::fprintf(stderr,
                   "--prof requires a build with -DMPQ_PROF=ON\n");
      return 2;
    }
    obs::prof::Reset();
    obs::prof::SetEnabled(true);
    profiled = EngineTransfer(/*reps=*/3);
    obs::prof::SetEnabled(false);
    spans = obs::prof::Snapshot();
  }

  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("hardware_threads")
      .UInt(std::max(1u, std::thread::hardware_concurrency()));
  writer.Key("baseline");
  writer.BeginObject();
  writer.Key("wire_packet_assemble_ns").Double(kBaselineWireNs);
  writer.Key("aead_seal_ns").Double(kBaselineSealNs);
  writer.Key("aead_open_ns").Double(kBaselineOpenNs);
  writer.Key("engine_wall_s").Double(kBaselineEngineWallS);
  writer.Key("engine_packets_per_sec").Double(kBaselineEnginePacketsPerSec);
  writer.Key("sweep_serial_wall_s").Double(kBaselineSweepSerialWallS);
  writer.EndObject();
  writer.Key("current");
  writer.BeginObject();
  writer.Key("wire_packet_assemble_ns").Double(wire_ns);
  writer.Key("aead_seal_ns").Double(aead.seal_ns);
  writer.Key("aead_open_ns").Double(aead.open_ns);
  writer.Key("engine_wall_s").Double(engine.wall_s);
  writer.Key("engine_packets").UInt(engine.packets);
  writer.Key("engine_packets_per_sec").Double(engine_pps);
  writer.Key("sweep_serial_wall_s").Double(sweep_serial_s);
  writer.Key("sweep_jobs").UInt(static_cast<std::uint64_t>(jobs));
  writer.Key("sweep_parallel_wall_s").Double(sweep_parallel_s);
  writer.EndObject();
  bench::WriteSimdBlock(writer);
  writer.Key("engine_speedup_vs_baseline")
      .Double(engine_pps / kBaselineEnginePacketsPerSec);
  writer.Key("sweep_parallel_speedup")
      .Double(sweep_parallel_s > 0 ? sweep_serial_s / sweep_parallel_s
                                   : 0.0);
  if (quick) writer.Key("quick").Bool(true);
  if (prof) {
    // Spans accumulate across every profiled rep, so share-of-wall math
    // uses the summed wall; overhead compares the medians.
    const double wall_ns = profiled.total_wall_s * 1e9;
    std::uint64_t total_self = 0;
    std::map<std::string, std::uint64_t> by_subsystem;
    for (const auto& span : spans) {
      total_self += span.self_ns;
      by_subsystem[span.leaf.substr(0, span.leaf.find(';'))] +=
          span.self_ns;
    }
    writer.Key("prof");
    writer.BeginObject();
    writer.Key("engine_wall_ns").Double(wall_ns);
    writer.Key("engine_wall_s").Double(profiled.wall_s);
    writer.Key("engine_packets").UInt(profiled.packets);
    writer.Key("overhead_pct")
        .Double(100.0 * (profiled.wall_s - engine.wall_s) / engine.wall_s);
    // Share of the profiled run's wall time attributed to each
    // subsystem (self time of its scopes); the sum is "coverage" — the
    // fraction of engine wall the profiler can account for.
    writer.Key("coverage")
        .Double(static_cast<double>(total_self) / wall_ns);
    writer.Key("subsystems");
    writer.BeginObject();
    for (const auto& [name, self_ns] : by_subsystem) {
      writer.Key(name).Double(static_cast<double>(self_ns) / wall_ns);
    }
    writer.EndObject();
    writer.Key("spans");
    obs::prof::WriteSpans(writer);
    writer.EndObject();
  }
  writer.EndObject();

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    out << writer.str() << '\n';
  }
  std::printf("%s\n", writer.str().c_str());
  return 0;
}
