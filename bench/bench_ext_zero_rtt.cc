// Extension experiment: 0-RTT repeat connections.
//
// The paper evaluates Google QUIC's 1-RTT handshake (§4.2: "With QUIC,
// the secure handshake consumes a single round-trip-time"). For repeat
// connections Google QUIC went further: the cached server config lets the
// client derive keys locally and send the request with the CHLO — 0-RTT.
// This bench extends Fig. 9's short-transfer comparison with that mode:
// the QUIC-vs-TCP gap grows from 2 saved RTTs to 3.
#include <cstdio>

#include "harness/runner.h"
#include "quic/endpoint.h"
#include "sim/topology.h"

namespace {

using namespace mpq;

double RunQuic(bool zero_rtt, Duration rtt, ByteCount size) {
  sim::Simulator sim;
  sim::Network net(sim, Rng(5));
  std::array<sim::PathParams, 2> paths;
  for (auto& p : paths) {
    p.capacity_mbps = 20;
    p.rtt = rtt;
    p.max_queue_delay = 50 * kMillisecond;
  }
  auto topo = sim::BuildTwoPathTopology(net, paths);
  quic::ConnectionConfig config;
  config.zero_rtt = zero_rtt;
  quic::ServerEndpoint server(sim, net,
                              {topo.server_addr[0], topo.server_addr[1]},
                              config, 1);
  server.SetAcceptHandler([](quic::Connection& conn) {
    auto request = std::make_shared<std::string>();
    conn.SetStreamDataHandler(
        [&conn, request](StreamId id, ByteCount,
                         std::span<const std::uint8_t> data, bool fin) {
          request->append(data.begin(), data.end());
          if (fin) {
            conn.SendOnStream(id, std::make_unique<PatternSource>(
                                      id, ByteCount{std::stoull(request->substr(4))}));
          }
        });
  });
  quic::ClientEndpoint client(sim, net, {topo.client_addr[0]}, config, 2);
  bool finished = false;
  client.connection().SetStreamDataHandler(
      [&](StreamId, ByteCount, std::span<const std::uint8_t>, bool fin) {
        if (fin) finished = true;
      });
  client.connection().SetEstablishedHandler([&] {
    const std::string request = "GET " + std::to_string(size.value());
    client.connection().SendOnStream(
        StreamId{3}, std::make_unique<BufferSource>(
               std::vector<std::uint8_t>(request.begin(), request.end())));
  });
  client.Connect(topo.server_addr[0]);
  while (!finished && sim.RunOne(120 * kSecond)) {
  }
  return DurationToSeconds(sim.now());
}

double RunTcp(Duration rtt, ByteCount size) {
  std::array<sim::PathParams, 2> paths;
  for (auto& p : paths) {
    p.capacity_mbps = 20;
    p.rtt = rtt;
    p.max_queue_delay = 50 * kMillisecond;
  }
  harness::TransferOptions options;
  options.transfer_size = size;
  options.seed = 5;
  return DurationToSeconds(
      harness::RunTransfer(harness::Protocol::kTcp, paths, options)
          .completion_time);
}

}  // namespace

int main() {
  std::printf("=== Extension: 0-RTT repeat connections (Fig. 9 extended) "
              "===\n");
  std::printf("GET 256 KB over one 20 Mbps path, sweeping the RTT.\n\n");
  std::printf("%-10s %-16s %-16s %-16s\n", "RTT", "HTTPS/TCP [s]",
              "QUIC 1-RTT [s]", "QUIC 0-RTT [s]");
  constexpr ByteCount kSize{256 * 1024};
  for (Duration rtt : {20 * kMillisecond, 50 * kMillisecond,
                       100 * kMillisecond, 200 * kMillisecond}) {
    std::printf("%6lld ms  %-16.3f %-16.3f %-16.3f\n",
                static_cast<long long>(rtt / kMillisecond), RunTcp(rtt, kSize),
                RunQuic(false, rtt, kSize), RunQuic(true, rtt, kSize));
  }
  std::printf(
      "\nexpectation: each column drops roughly one RTT from the previous "
      "one at the same row (TCP pays 3 RTTs of setup, 1-RTT QUIC pays 1, "
      "0-RTT pays none); the absolute gap scales with the RTT.\n");
  return 0;
}
