// Reproduces Figure 11 of "Multipath QUIC: Design and Evaluation"
// (CoNEXT '17): request/response traffic over MPQUIC where the initial
// (faster, 15 ms) path becomes completely lossy at t = 3 s. The client
// detects the failure via an RTO, retransmits on the second (25 ms) path
// and attaches a PATHS frame so the server answers on the working path
// without waiting for its own RTO.
//
// Prints one row per request: send time and response delay — the exact
// series the paper plots. An MPTCP run of the same workload is included
// as an extension for comparison.
#include <cstdio>
#include <cstring>

#include "harness/runner.h"

namespace {

void PrintSeries(const char* label,
                 const std::vector<mpq::harness::HandoverSample>& samples) {
  std::printf("# %s: sent_time_s response_delay_ms\n", label);
  for (const auto& sample : samples) {
    if (sample.answered) {
      std::printf("%.3f %.1f\n", mpq::DurationToSeconds(sample.sent_time),
                  static_cast<double>(sample.response_delay) / 1000.0);
    } else {
      std::printf("%.3f unanswered\n",
                  mpq::DurationToSeconds(sample.sent_time));
    }
  }
  // Headline: worst delay around the failure and the steady-state after.
  mpq::Duration worst = 0;
  mpq::Duration steady_after = 0;
  int after_count = 0;
  for (const auto& sample : samples) {
    if (!sample.answered) continue;
    worst = std::max(worst, sample.response_delay);
    if (sample.sent_time > 4 * mpq::kSecond) {
      steady_after += sample.response_delay;
      ++after_count;
    }
  }
  std::printf("# worst delay %.1f ms; steady-state after failover %.1f ms\n\n",
              static_cast<double>(worst) / 1000.0,
              after_count > 0
                  ? static_cast<double>(steady_after / after_count) / 1000.0
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpq::harness;
  HandoverOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--qlog") == 0 && i + 1 < argc) {
      // NDJSON trace of the MPQUIC run (render with tools/mpq_trace):
      // includes prof:lifecycle events, so the per-path ack-latency
      // shift across the failover is visible per packet.
      options.qlog_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      // One metrics-snapshot JSON line with the per-path
      // path.N.lifecycle.acked_us histograms (p50/p99/p999).
      options.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      options.metrics_label = argv[++i];
    }
  }
  std::printf("=== Figure 11 ===\n");
  std::printf(
      "750-byte request every 400 ms; path 0 (15 ms RTT) dies at t=3 s; "
      "path 1 (25 ms RTT) takes over.\n\n");
  PrintSeries("MPQUIC (paper figure)", RunQuicHandover(options));
  PrintSeries("MPTCP (extension, same workload)",
              RunMptcpHandover(options));
  return 0;
}
