// Extension experiment: seamless multipath handover vs QUIC connection
// migration ("hard handover").
//
// §1 of the paper motivates MPQUIC by contrasting it with QUIC's
// connection migration: "QUIC connection migration allows moving a flow
// from one address to another. This is a form of hard handover.
// Experience with MPTCP on smartphones shows that multipath provides
// seamless handovers." This bench quantifies that contrast on the Fig. 11
// workload: MPQUIC keeps a warm second path; migrating single-path QUIC
// must first burn an RTO to notice the failure, then restart RTT and
// congestion state from scratch on the new address.
#include <algorithm>
#include <cstdio>

#include "harness/runner.h"

namespace {

void Report(const char* label,
            const std::vector<mpq::harness::HandoverSample>& samples) {
  mpq::Duration worst = 0;
  mpq::Duration steady = 0;
  int after = 0, unanswered = 0;
  for (const auto& sample : samples) {
    if (!sample.answered) {
      ++unanswered;
      continue;
    }
    worst = std::max(worst, sample.response_delay);
    if (sample.sent_time > 5 * mpq::kSecond) {
      steady += sample.response_delay;
      ++after;
    }
  }
  std::printf("%-40s worst %7.1f ms   steady-after %5.1f ms   unanswered %d\n",
              label, static_cast<double>(worst) / 1000.0,
              after > 0 ? static_cast<double>(steady / after) / 1000.0 : 0.0,
              unanswered);
}

}  // namespace

int main() {
  using namespace mpq::harness;
  std::printf("=== Extension: hard handover (connection migration) vs "
              "seamless multipath ===\n");
  std::printf("Fig. 11 workload: 750 B request / 400 ms; path 0 dies at "
              "t = 3 s.\n\n");
  for (int seed = 1; seed <= 3; ++seed) {
    HandoverOptions options;
    options.seed = seed;

    options.single_path_migration = false;
    char label[64];
    std::snprintf(label, sizeof(label), "MPQUIC lowest-rtt (seed %d)", seed);
    Report(label, RunQuicHandover(options));

    options.scheduler = mpq::quic::SchedulerType::kRedundant;
    std::snprintf(label, sizeof(label),
                  "MPQUIC redundant, 2x cost (seed %d)", seed);
    Report(label, RunQuicHandover(options));
    options.scheduler = mpq::quic::SchedulerType::kLowestRtt;

    options.single_path_migration = true;
    std::snprintf(label, sizeof(label),
                  "QUIC + migration, hard (seed %d)", seed);
    Report(label, RunQuicHandover(options));

    options.single_path_migration = false;
    std::snprintf(label, sizeof(label), "MPTCP (seed %d)", seed);
    Report(label, RunMptcpHandover(options));
    std::printf("\n");
  }
  std::printf(
      "expectation: the redundant MPQUIC scheduler rides through the "
      "failure with no visible spike (every request already travels both "
      "paths); lowest-rtt MPQUIC and hard migration pay one client RTO; "
      "MPTCP pays a second, server-side RTO on top because it has no "
      "PATHS frame to warn the peer (the §4.3 mechanism).\n");
  return 0;
}
