// Reproduces Figure 7 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 7",
              "GET 20 MB, high-BDP no random loss. Paper: MPTCP benefit collapses (20% beneficial) while MPQUIC stays beneficial (58%).",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kHighBdpNoLoss, options);
  PrintBenefitFigure(outcomes);
  return 0;
}
