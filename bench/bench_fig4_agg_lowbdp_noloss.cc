// Reproduces Figure 4 of "Multipath QUIC: Design and Evaluation" (CoNEXT '17).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq::harness;
  ClassEvalOptions options = FigureDefaults(argc, argv);
  PrintHeader("Figure 4",
              "GET 20 MB, low-BDP no random loss. Paper: MPQUIC EBen ~1 and insensitive to initial path (beneficial 77% vs MPTCP 45%).",
              options);
  const auto outcomes =
      EvaluateClass(mpq::expdesign::ScenarioClass::kLowBdpNoLoss, options);
  PrintBenefitFigure(outcomes);
  return 0;
}
