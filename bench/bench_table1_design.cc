// Reproduces Table 1 of "Multipath QUIC: Design and Evaluation"
// (CoNEXT '17): the WSP experimental-design parameter space. Prints the
// factor ranges per class, generates the 253-point design for each, and
// reports coverage statistics (per-factor min/max reached and the
// design's minimum pairwise distance — the space-filling metric WSP
// maximises).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "expdesign/scenarios.h"
#include "expdesign/wsp.h"

int main() {
  using namespace mpq;
  using namespace mpq::expdesign;

  std::printf("=== Table 1: experimental design parameters ===\n");
  std::printf("%-18s %-12s %-12s %-12s %-12s\n", "Factor", "Low-BDP min",
              "Low-BDP max", "High-BDP min", "High-BDP max");
  const FactorRanges low = RangesFor(ScenarioClass::kLowBdpLosses);
  const FactorRanges high = RangesFor(ScenarioClass::kHighBdpLosses);
  std::printf("%-18s %-12.1f %-12.1f %-12.1f %-12.1f\n", "Capacity [Mbps]",
              low.capacity_min_mbps, low.capacity_max_mbps,
              high.capacity_min_mbps, high.capacity_max_mbps);
  std::printf("%-18s %-12lld %-12lld %-12lld %-12lld\n", "RTT [ms]",
              static_cast<long long>(low.rtt_min / kMillisecond),
              static_cast<long long>(low.rtt_max / kMillisecond),
              static_cast<long long>(high.rtt_min / kMillisecond),
              static_cast<long long>(high.rtt_max / kMillisecond));
  std::printf("%-18s %-12lld %-12lld %-12lld %-12lld\n", "Queuing delay [ms]",
              static_cast<long long>(low.queue_min / kMillisecond),
              static_cast<long long>(low.queue_max / kMillisecond),
              static_cast<long long>(high.queue_min / kMillisecond),
              static_cast<long long>(high.queue_max / kMillisecond));
  std::printf("%-18s %-12.1f %-12.1f %-12.1f %-12.1f\n", "Random loss [%]",
              low.loss_min * 100, low.loss_max * 100, high.loss_min * 100,
              high.loss_max * 100);

  std::printf("\n=== WSP designs (253 scenarios per class, as in §4.1) ===\n");
  for (ScenarioClass klass :
       {ScenarioClass::kLowBdpNoLoss, ScenarioClass::kLowBdpLosses,
        ScenarioClass::kHighBdpNoLoss, ScenarioClass::kHighBdpLosses}) {
    const auto scenarios = GenerateScenarios(klass, 253);
    double cap_min = 1e9, cap_max = 0;
    Duration rtt_min = kTimeInfinite, rtt_max = 0;
    Duration queue_max = 0;
    double loss_max = 0;
    for (const auto& scenario : scenarios) {
      for (const auto& path : scenario.paths) {
        cap_min = std::min(cap_min, path.capacity_mbps);
        cap_max = std::max(cap_max, path.capacity_mbps);
        rtt_min = std::min(rtt_min, path.rtt);
        rtt_max = std::max(rtt_max, path.rtt);
        queue_max = std::max(queue_max, path.max_queue_delay);
        loss_max = std::max(loss_max, path.random_loss_rate);
      }
    }
    // Recompute the unit-cube design to report its space-filling metric.
    const std::size_t dims = RangesFor(klass).lossy ? 8 : 6;
    const auto design = WspDesign(dims, 253, 20170712);
    std::printf(
        "%-18s n=%zu  capacity %.2f..%.2f Mbps, RTT %lld..%lld ms, "
        "queue <=%lld ms, loss <=%.2f%%, min pairwise distance %.4f\n",
        ToString(klass).c_str(), scenarios.size(), cap_min, cap_max,
        static_cast<long long>(rtt_min / kMillisecond),
        static_cast<long long>(rtt_max / kMillisecond),
        static_cast<long long>(queue_max / kMillisecond), loss_max * 100,
        MinPairwiseDistance(design));
  }
  std::printf(
      "\nEach class feeds 253 scenarios x 2 initial paths = 506 simulations "
      "per figure (x3 repetitions with --full).\n");
  return 0;
}
