// Ablation: TCP SACK block budget (§4.1 "Low-BDP-losses": the (MP)QUIC
// advantage under random loss is attributed to ACK frames carrying up to
// 256 ranges vs TCP's 2-3 SACK blocks).
//
// We grant the TCP baseline progressively more SACK blocks. If the
// paper's attribution holds, TCP's lossy-scenario completion times should
// close much of the gap toward QUIC as the budget approaches QUIC's.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace mpq;
  using namespace mpq::harness;
  ClassEvalOptions base = FigureDefaults(argc, argv);
  base.scenario_count = std::min<std::size_t>(base.scenario_count, 40);

  const auto scenarios = expdesign::GenerateScenarios(
      expdesign::ScenarioClass::kLowBdpLosses, base.scenario_count,
      base.seed);

  std::printf("=== Ablation: TCP SACK blocks (low-BDP losses) ===\n\n");

  // Reference: QUIC on the same scenarios.
  std::vector<double> quic_times;
  for (const auto& scenario : scenarios) {
    TransferOptions options = base.base_options;
    options.transfer_size = base.transfer_size;
    options.time_limit = base.time_limit;
    options.seed = base.seed + 41ULL * scenario.index;
    quic_times.push_back(DurationToSeconds(
        RunTransfer(Protocol::kQuic, scenario.paths, options)
            .completion_time));
  }
  std::printf("  %-24s median %8.2f s\n", "QUIC (256 ack ranges)",
              Median(quic_times));

  for (int blocks : {1, 3, 16, 64, 256}) {
    std::vector<double> ratios;
    std::vector<double> times;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      TransferOptions options = base.base_options;
      options.transfer_size = base.transfer_size;
      options.time_limit = base.time_limit;
      options.seed = base.seed + 41ULL * scenarios[i].index;
      options.tcp_sack_blocks = blocks;
      const double t = DurationToSeconds(
          RunTransfer(Protocol::kTcp, scenarios[i].paths, options)
              .completion_time);
      times.push_back(t);
      if (quic_times[i] > 0) ratios.push_back(t / quic_times[i]);
    }
    std::printf("  TCP with %3d SACK blocks  median %8.2f s   median "
                "TCP/QUIC ratio %.2f\n",
                blocks, Median(times), Median(ratios));
  }
  std::printf(
      "\nfinding (see EXPERIMENTS.md): with RFC 6675 loss marking and a "
      "persistent scoreboard, the SACK *block budget* barely matters — the "
      "sender reconstructs the holes from the highest ranges alone. The "
      "paper's Fig. 5 gap therefore measures the 2015-era Linux recovery "
      "implementation more than the ACK information bound itself.\n");
  return 0;
}
